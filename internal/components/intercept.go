package components

import (
	"strconv"
	"time"

	"ccahydro/internal/amr"
	"ccahydro/internal/cca"
	"ccahydro/internal/chem"
	"ccahydro/internal/cvode"
	"ccahydro/internal/euler"
	"ccahydro/internal/field"
	"ccahydro/internal/obs"
)

// Port-call interceptor proxies. When a framework has observability
// attached, cca.GetPort wraps each fetched wire in one of the proxies
// below; every call crossing the wire then lands in a
// port_call_seconds{instance,port,method} latency histogram — the
// running system's own Table 4 (component invocation cost), measured
// per wire instead of in a dedicated micro-benchmark.
//
// Proxies are hand-written because Go cannot implement an arbitrary
// interface at runtime. Each must preserve every capability callers
// probe for:
//
//   - the PatchRHS proxy forwards the optional RegionRHSPort extension
//     and answers SupportsRegion truthfully, so the drivers'
//     exchange/compute overlap engages exactly as without the proxy;
//   - the implicit-integrator proxy comes in two variants so a
//     WorkerIntegratorPort assertion on the wire stays truthful, and
//     per-worker integrators are wrapped into the same histogram
//     (their calls run on pool goroutines; histograms are atomic);
//   - MeshPort is deliberately NOT wrapped: drivers downcast it to the
//     concrete *GrACEComponent for framework-internal fast paths, and
//     a proxy would break that (and the identity of the mesh object).
//
// Registration happens in init, from this package, because the port
// interfaces live here — the CCA "user community" owns both the types
// and their instrumentation.

// obsNow/obsSince isolate the two wall-clock touches of every proxy
// method. Recording goes through obs.PortCall, which applies the
// session's sampling rate / latency floor (see Obs.SetPortCallSampling)
// and counts what it drops.
func obsSince(h *obs.PortCall, t0 time.Time) { h.ObserveSince(t0) }

// obsLevelName labels a per-level span; callers only build it when a
// session is attached.
func obsLevelName(op string, level int) string {
	return op + " L" + strconv.Itoa(level)
}

// iRHS instruments ode.RHSPort.
type iRHS struct {
	inner RHSPort
	dim   *obs.PortCall
	eval  *obs.PortCall
	jacf  *obs.PortCall
}

func (p *iRHS) Dim() int {
	t0 := time.Now()
	defer obsSince(p.dim, t0)
	return p.inner.Dim()
}

func (p *iRHS) Eval(t float64, y, ydot []float64) {
	t0 := time.Now()
	p.inner.Eval(t, y, ydot)
	obsSince(p.eval, t0)
}

// JacFn forwards the optional JacobianRHSPort capability truthfully: a
// nil evaluator when the wrapped RHS has none, otherwise the inner
// evaluator wrapped so analytic Jacobian builds land in the histogram
// alongside Eval.
func (p *iRHS) JacFn() cvode.Jac {
	jp, ok := p.inner.(JacobianRHSPort)
	if !ok {
		return nil
	}
	fn := jp.JacFn()
	if fn == nil {
		return nil
	}
	hh := p.jacf
	return func(t float64, y, jac []float64) {
		t0 := time.Now()
		fn(t, y, jac)
		obsSince(hh, t0)
	}
}

// iPatchRHS instruments samr.PatchRHSPort; iRegionRHS adds the
// RegionRHSPort extension when the wrapped component provides it.
type iPatchRHS struct {
	inner PatchRHSPort
	eval  *obs.PortCall
}

func (p *iPatchRHS) EvalPatch(pd, out *field.PatchData, dx, dy float64) {
	t0 := time.Now()
	p.inner.EvalPatch(pd, out, dx, dy)
	obsSince(p.eval, t0)
}

// SupportsRegion reports the wrapped component's actual capability, so
// the overlap probe never engages region evaluation through a proxy
// whose inner port lacks it.
func (p *iPatchRHS) SupportsRegion() bool {
	rr := p.inner
	if s, ok := rr.(interface{ SupportsRegion() bool }); ok {
		return s.SupportsRegion()
	}
	_, ok := rr.(RegionRHSPort)
	return ok
}

type iRegionRHS struct {
	iPatchRHS
	region *obs.PortCall
}

func (p *iRegionRHS) EvalRegion(pd, out *field.PatchData, region amr.Box, dx, dy float64) {
	t0 := time.Now()
	p.inner.(RegionRHSPort).EvalRegion(pd, out, region, dx, dy)
	obsSince(p.region, t0)
}

// iImplicit instruments ode.ImplicitIntegratorPort; iWorkerImplicit
// additionally forwards WorkerIntegratorPort, wrapping each per-worker
// integrator so fan-out cell integrations record into the same
// histogram.
type iImplicit struct {
	inner ImplicitIntegratorPort
	integ *obs.PortCall
}

func (p *iImplicit) IntegrateTo(t0f, t1f float64, y []float64) (cvode.Stats, error) {
	t0 := time.Now()
	st, err := p.inner.IntegrateTo(t0f, t1f, y)
	obsSince(p.integ, t0)
	return st, err
}

// Counters/RestoreCounters forward the optional CounterSource
// capability (checkpointed solver statistics) through the proxy, the
// same way SupportsRegion stays truthful on iPatchRHS. A nil map from
// Counters means the wrapped component has no counters to save.
func (p *iImplicit) Counters() map[string]float64 {
	if cs, ok := p.inner.(CounterSource); ok {
		return cs.Counters()
	}
	return nil
}

func (p *iImplicit) RestoreCounters(m map[string]float64) {
	if cs, ok := p.inner.(CounterSource); ok {
		cs.RestoreCounters(m)
	}
}

type iWorkerImplicit struct {
	iImplicit
	wip WorkerIntegratorPort
}

func (p *iWorkerImplicit) WorkerIntegrator(w, width int) ImplicitIntegratorPort {
	return &iImplicit{inner: p.wip.WorkerIntegrator(w, width), integ: p.integ}
}

// iChemistry instruments chem.SourceTermPort.
type iChemistry struct {
	inner    ChemistryPort
	cp, cv   *obs.PortCall
	mechHist *obs.PortCall
}

func (p *iChemistry) Mechanism() *chem.Mechanism {
	t0 := time.Now()
	defer obsSince(p.mechHist, t0)
	return p.inner.Mechanism()
}

// Kernel forwards the provider's kernel untimed: it is a capability
// getter adaptors call once at closure-build time, not a hot path.
func (p *iChemistry) Kernel() chem.Kernel { return p.inner.Kernel() }

func (p *iChemistry) ConstPressure(T, P float64, Y, dY []float64) float64 {
	t0 := time.Now()
	v := p.inner.ConstPressure(T, P, Y, dY)
	obsSince(p.cp, t0)
	return v
}

func (p *iChemistry) ConstVolume(T, rho float64, Y, dY []float64) float64 {
	t0 := time.Now()
	v := p.inner.ConstVolume(T, rho, Y, dY)
	obsSince(p.cv, t0)
	return v
}

// iDPDt instruments chem.DPDtPort.
type iDPDt struct {
	inner DPDtPort
	h     *obs.PortCall
}

func (p *iDPDt) DPDt(rho, T, dTdt float64, Y, dYdt []float64) float64 {
	t0 := time.Now()
	v := p.inner.DPDt(rho, T, dTdt, Y, dYdt)
	obsSince(p.h, t0)
	return v
}

// iTransport instruments transport.PropertiesPort.
type iTransport struct {
	inner      TransportPort
	props, max *obs.PortCall
}

func (p *iTransport) Properties(T, P float64, Y, X, D []float64) (float64, float64) {
	t0 := time.Now()
	l, r := p.inner.Properties(T, P, Y, X, D)
	obsSince(p.props, t0)
	return l, r
}

func (p *iTransport) MaxDiffusivity(T, P float64, Y []float64) float64 {
	t0 := time.Now()
	v := p.inner.MaxDiffusivity(T, P, Y)
	obsSince(p.max, t0)
	return v
}

// iSpectral instruments ode.SpectralRadiusPort.
type iSpectral struct {
	inner SpectralRadiusPort
	h     *obs.PortCall
}

func (p *iSpectral) MaxEigen(mesh MeshPort, name string) float64 {
	t0 := time.Now()
	v := p.inner.MaxEigen(mesh, name)
	obsSince(p.h, t0)
	return v
}

// iExplicit instruments samr.ExplicitIntegratorPort.
type iExplicit struct {
	inner ExplicitIntegratorPort
	h     *obs.PortCall
}

func (p *iExplicit) AdvanceLevel(mesh MeshPort, name string, level int, t0f, t1f float64) error {
	t0 := time.Now()
	err := p.inner.AdvanceLevel(mesh, name, level, t0f, t1f)
	obsSince(p.h, t0)
	return err
}

// iCellChem instruments samr.CellChemistryPort.
type iCellChem struct {
	inner CellChemistryPort
	h     *obs.PortCall
}

func (p *iCellChem) AdvanceChemistry(mesh MeshPort, name string, level int, dt float64) (int, error) {
	t0 := time.Now()
	n, err := p.inner.AdvanceChemistry(mesh, name, level, dt)
	obsSince(p.h, t0)
	return n, err
}

// AdvanceChemistryLevels delegates the multi-level epoch to the wrapped
// component; the drivers consult SupportsMultiLevel before calling, so
// this is only reached when the inner port really implements it.
func (p *iCellChem) AdvanceChemistryLevels(mesh MeshPort, name string, dt float64) (int, error) {
	ml, ok := p.inner.(MultiLevelChemistryPort)
	if !ok {
		panic("components: AdvanceChemistryLevels on a wire without multi-level support")
	}
	t0 := time.Now()
	n, err := ml.AdvanceChemistryLevels(mesh, name, dt)
	obsSince(p.h, t0)
	return n, err
}

// SupportsMultiLevel reports the wrapped component's actual capability,
// the same way SupportsRegion stays truthful on iPatchRHS.
func (p *iCellChem) SupportsMultiLevel() bool {
	inner := CellChemistryPort(p.inner)
	if s, ok := inner.(interface{ SupportsMultiLevel() bool }); ok {
		return s.SupportsMultiLevel()
	}
	_, ok := inner.(MultiLevelChemistryPort)
	return ok
}

// Counters/RestoreCounters forward CounterSource across the
// cellChemistry wire (the ImplicitIntegrator adaptor delegates them to
// its wired integrator).
func (p *iCellChem) Counters() map[string]float64 {
	if cs, ok := p.inner.(CounterSource); ok {
		return cs.Counters()
	}
	return nil
}

func (p *iCellChem) RestoreCounters(m map[string]float64) {
	if cs, ok := p.inner.(CounterSource); ok {
		cs.RestoreCounters(m)
	}
}

// iFlux instruments hydro.FluxPort.
type iFlux struct {
	inner FluxPort
	h     *obs.PortCall
}

func (p *iFlux) Flux(g euler.Gas, l, r euler.Primitive) euler.Conserved {
	t0 := time.Now()
	f := p.inner.Flux(g, l, r)
	obsSince(p.h, t0)
	return f
}

// iStates instruments hydro.StatesPort.
type iStates struct {
	inner StatesPort
	h     *obs.PortCall
}

func (p *iStates) Pair(g euler.Gas, pd *field.PatchData, i, j, dir int) (euler.Primitive, euler.Primitive) {
	t0 := time.Now()
	l, r := p.inner.Pair(g, pd, i, j, dir)
	obsSince(p.h, t0)
	return l, r
}

// iCharacteristics instruments hydro.CharacteristicsPort.
type iCharacteristics struct {
	inner CharacteristicsPort
	h     *obs.PortCall
}

func (p *iCharacteristics) StableDt(mesh MeshPort, name string, level int) float64 {
	t0 := time.Now()
	v := p.inner.StableDt(mesh, name, level)
	obsSince(p.h, t0)
	return v
}

// iRegrid instruments samr.RegridPort.
type iRegrid struct {
	inner RegridPort
	h     *obs.PortCall
}

func (p *iRegrid) EstimateAndRegrid(mesh MeshPort, name string) bool {
	t0 := time.Now()
	v := p.inner.EstimateAndRegrid(mesh, name)
	obsSince(p.h, t0)
	return v
}

// iStats instruments util.StatisticsPort.
type iStats struct {
	inner          StatsPort
	rec, get, keys *obs.PortCall
}

func (p *iStats) Record(key string, value float64) {
	t0 := time.Now()
	p.inner.Record(key, value)
	obsSince(p.rec, t0)
}

func (p *iStats) Get(key string) []float64 {
	t0 := time.Now()
	defer obsSince(p.get, t0)
	return p.inner.Get(key)
}

func (p *iStats) Keys() []string {
	t0 := time.Now()
	defer obsSince(p.keys, t0)
	return p.inner.Keys()
}

// iBC instruments samr.BoundaryConditionPort.
type iBC struct {
	inner BCPort
	h     *obs.PortCall
}

func (p *iBC) Apply(name string, level int) {
	t0 := time.Now()
	p.inner.Apply(name, level)
	obsSince(p.h, t0)
}

// iICField instruments samr.InitialConditionPort.
type iICField struct {
	inner ICFieldPort
	h     *obs.PortCall
}

func (p *iICField) Impose(mesh MeshPort, name string) {
	t0 := time.Now()
	p.inner.Impose(mesh, name)
	obsSince(p.h, t0)
}

// iICState instruments chem.InitialStatePort.
type iICState struct {
	inner ICStatePort
	h     *obs.PortCall
}

func (p *iICState) InitialState() (float64, float64, []float64) {
	t0 := time.Now()
	defer obsSince(p.h, t0)
	return p.inner.InitialState()
}

// iKeyValue instruments db.KeyValuePort.
type iKeyValue struct {
	inner    StatsKV
	set, get *obs.PortCall
}

// StatsKV aliases KeyValuePort for the proxy's field type.
type StatsKV = KeyValuePort

func (p *iKeyValue) SetValue(key string, v float64) {
	t0 := time.Now()
	p.inner.SetValue(key, v)
	obsSince(p.set, t0)
}

func (p *iKeyValue) Value(key string) (float64, bool) {
	t0 := time.Now()
	defer obsSince(p.get, t0)
	return p.inner.Value(key)
}

// iProlongRestrict instruments samr.ProlongRestrictPort.
type iProlongRestrict struct {
	inner        ProlongRestrictPort
	pro, res, cf *obs.PortCall
}

func (p *iProlongRestrict) Prolong(mesh MeshPort, name string, level int) {
	t0 := time.Now()
	p.inner.Prolong(mesh, name, level)
	obsSince(p.pro, t0)
}

func (p *iProlongRestrict) Restrict(mesh MeshPort, name string, level int) {
	t0 := time.Now()
	p.inner.Restrict(mesh, name, level)
	obsSince(p.res, t0)
}

func (p *iProlongRestrict) FillCoarseFine(mesh MeshPort, name string, level int) {
	t0 := time.Now()
	p.inner.FillCoarseFine(mesh, name, level)
	obsSince(p.cf, t0)
}

// iData instruments samr.DataObjectPort.
type iData struct {
	inner              DataPort
	exch, cfg, res, pr *obs.PortCall
}

func (p *iData) ExchangeGhosts(name string, level int) {
	t0 := time.Now()
	p.inner.ExchangeGhosts(name, level)
	obsSince(p.exch, t0)
}

func (p *iData) FillCoarseFineGhosts(name string, level int) {
	t0 := time.Now()
	p.inner.FillCoarseFineGhosts(name, level)
	obsSince(p.cfg, t0)
}

func (p *iData) Restrict(name string, level int) {
	t0 := time.Now()
	p.inner.Restrict(name, level)
	obsSince(p.res, t0)
}

func (p *iData) ProlongNewLevel(name string, level int) {
	t0 := time.Now()
	p.inner.ProlongNewLevel(name, level)
	obsSince(p.pr, t0)
}

func init() {
	h := func(o *obs.Obs, inst, port, method string) *obs.PortCall {
		return o.PortCall(inst, port, method)
	}
	reg := cca.RegisterPortWrapper

	reg(RHSPortType, func(o *obs.Obs, inst, port string, inner cca.Port) cca.Port {
		r, ok := inner.(RHSPort)
		if !ok {
			return nil
		}
		return &iRHS{inner: r, dim: h(o, inst, port, "Dim"), eval: h(o, inst, port, "Eval"),
			jacf: h(o, inst, port, "Jac")}
	})
	reg(PatchRHSPortType, func(o *obs.Obs, inst, port string, inner cca.Port) cca.Port {
		r, ok := inner.(PatchRHSPort)
		if !ok {
			return nil
		}
		base := iPatchRHS{inner: r, eval: h(o, inst, port, "EvalPatch")}
		if _, ok := r.(RegionRHSPort); ok {
			return &iRegionRHS{iPatchRHS: base, region: h(o, inst, port, "EvalRegion")}
		}
		return &base
	})
	reg(ImplicitIntegratorType, func(o *obs.Obs, inst, port string, inner cca.Port) cca.Port {
		r, ok := inner.(ImplicitIntegratorPort)
		if !ok {
			return nil
		}
		base := iImplicit{inner: r, integ: h(o, inst, port, "IntegrateTo")}
		if wip, ok := r.(WorkerIntegratorPort); ok {
			return &iWorkerImplicit{iImplicit: base, wip: wip}
		}
		return &base
	})
	reg(ChemistryPortType, func(o *obs.Obs, inst, port string, inner cca.Port) cca.Port {
		r, ok := inner.(ChemistryPort)
		if !ok {
			return nil
		}
		return &iChemistry{inner: r,
			cp: h(o, inst, port, "ConstPressure"), cv: h(o, inst, port, "ConstVolume"),
			mechHist: h(o, inst, port, "Mechanism")}
	})
	reg(DPDtPortType, func(o *obs.Obs, inst, port string, inner cca.Port) cca.Port {
		r, ok := inner.(DPDtPort)
		if !ok {
			return nil
		}
		return &iDPDt{inner: r, h: h(o, inst, port, "DPDt")}
	})
	reg(TransportPortType, func(o *obs.Obs, inst, port string, inner cca.Port) cca.Port {
		r, ok := inner.(TransportPort)
		if !ok {
			return nil
		}
		return &iTransport{inner: r,
			props: h(o, inst, port, "Properties"), max: h(o, inst, port, "MaxDiffusivity")}
	})
	reg(SpectralRadiusPortType, func(o *obs.Obs, inst, port string, inner cca.Port) cca.Port {
		r, ok := inner.(SpectralRadiusPort)
		if !ok {
			return nil
		}
		return &iSpectral{inner: r, h: h(o, inst, port, "MaxEigen")}
	})
	reg(ExplicitIntegratorType, func(o *obs.Obs, inst, port string, inner cca.Port) cca.Port {
		r, ok := inner.(ExplicitIntegratorPort)
		if !ok {
			return nil
		}
		return &iExplicit{inner: r, h: h(o, inst, port, "AdvanceLevel")}
	})
	reg(CellChemistryPortType, func(o *obs.Obs, inst, port string, inner cca.Port) cca.Port {
		r, ok := inner.(CellChemistryPort)
		if !ok {
			return nil
		}
		return &iCellChem{inner: r, h: h(o, inst, port, "AdvanceChemistry")}
	})
	reg(FluxPortType, func(o *obs.Obs, inst, port string, inner cca.Port) cca.Port {
		r, ok := inner.(FluxPort)
		if !ok {
			return nil
		}
		return &iFlux{inner: r, h: h(o, inst, port, "Flux")}
	})
	reg(StatesPortType, func(o *obs.Obs, inst, port string, inner cca.Port) cca.Port {
		r, ok := inner.(StatesPort)
		if !ok {
			return nil
		}
		return &iStates{inner: r, h: h(o, inst, port, "Pair")}
	})
	reg(CharacteristicsPortType, func(o *obs.Obs, inst, port string, inner cca.Port) cca.Port {
		r, ok := inner.(CharacteristicsPort)
		if !ok {
			return nil
		}
		return &iCharacteristics{inner: r, h: h(o, inst, port, "StableDt")}
	})
	reg(RegridPortType, func(o *obs.Obs, inst, port string, inner cca.Port) cca.Port {
		r, ok := inner.(RegridPort)
		if !ok {
			return nil
		}
		return &iRegrid{inner: r, h: h(o, inst, port, "EstimateAndRegrid")}
	})
	reg(StatsPortType, func(o *obs.Obs, inst, port string, inner cca.Port) cca.Port {
		r, ok := inner.(StatsPort)
		if !ok {
			return nil
		}
		return &iStats{inner: r,
			rec: h(o, inst, port, "Record"), get: h(o, inst, port, "Get"), keys: h(o, inst, port, "Keys")}
	})
	reg(BCPortType, func(o *obs.Obs, inst, port string, inner cca.Port) cca.Port {
		r, ok := inner.(BCPort)
		if !ok {
			return nil
		}
		return &iBC{inner: r, h: h(o, inst, port, "Apply")}
	})
	reg(ICFieldPortType, func(o *obs.Obs, inst, port string, inner cca.Port) cca.Port {
		r, ok := inner.(ICFieldPort)
		if !ok {
			return nil
		}
		return &iICField{inner: r, h: h(o, inst, port, "Impose")}
	})
	reg(ICStatePortType, func(o *obs.Obs, inst, port string, inner cca.Port) cca.Port {
		r, ok := inner.(ICStatePort)
		if !ok {
			return nil
		}
		return &iICState{inner: r, h: h(o, inst, port, "InitialState")}
	})
	reg(KeyValuePortType, func(o *obs.Obs, inst, port string, inner cca.Port) cca.Port {
		r, ok := inner.(KeyValuePort)
		if !ok {
			return nil
		}
		return &iKeyValue{inner: r, set: h(o, inst, port, "SetValue"), get: h(o, inst, port, "Value")}
	})
	reg(ProlongRestrictPortType, func(o *obs.Obs, inst, port string, inner cca.Port) cca.Port {
		r, ok := inner.(ProlongRestrictPort)
		if !ok {
			return nil
		}
		return &iProlongRestrict{inner: r,
			pro: h(o, inst, port, "Prolong"), res: h(o, inst, port, "Restrict"),
			cf: h(o, inst, port, "FillCoarseFine")}
	})
	reg(DataPortType, func(o *obs.Obs, inst, port string, inner cca.Port) cca.Port {
		r, ok := inner.(DataPort)
		if !ok {
			return nil
		}
		return &iData{inner: r,
			exch: h(o, inst, port, "ExchangeGhosts"), cfg: h(o, inst, port, "FillCoarseFineGhosts"),
			res: h(o, inst, port, "Restrict"), pr: h(o, inst, port, "ProlongNewLevel")}
	})
	// Deliberately unwrapped: MeshPort (concrete downcasts),
	// ExecutionPort (identity of the pool matters), TimingPort (it is
	// itself instrumentation).
}
