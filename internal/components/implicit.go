package components

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ccahydro/internal/cca"
	"ccahydro/internal/chem"
	"ccahydro/internal/cvode"
	"ccahydro/internal/field"
)

// ImplicitIntegrator is the adaptor that "calls on the Implicit
// Integration subsystem for all cells and all patches" (paper Sec.
// 4.2): for every cell of the named field on a level, it packs the
// cell state [T, Y...] into a vector, advances it through the
// connected implicit integrator (CvodeComponent) against the
// constant-pressure chemistry RHS, and writes the result back.
// Parameter "P" is the open-domain pressure (default 1 atm).
type ImplicitIntegrator struct {
	svc cca.Services
	p0  float64
	// chem is guarded by chemOnce: cellRHS.Eval runs on pool
	// goroutines inside the per-worker solvers.
	chem     ChemistryPort
	chemOnce sync.Once

	// rhs context for the current cell integration.
	nsp int

	// cells is the reusable flattened work list (one driver advance at
	// a time drives this port, so reuse is race-free).
	cells []cellRef
}

// SetServices implements cca.Component.
func (ii *ImplicitIntegrator) SetServices(svc cca.Services) error {
	ii.svc = svc
	ii.p0 = svc.Parameters().GetFloat("P", chem.PAtm)
	if err := svc.RegisterUsesPort("integrator", ImplicitIntegratorType); err != nil {
		return err
	}
	if err := svc.RegisterUsesPort("chemistry", ChemistryPortType); err != nil {
		return err
	}
	if err := registerExecPort(svc); err != nil {
		return err
	}
	// The adaptor also provides the RHS the CvodeComponent consumes:
	// the wiring loops CvodeComponent.rhs -> ImplicitIntegrator.cellRHS.
	if err := svc.AddProvidesPort(cellRHS{ii}, "cellRHS", RHSPortType); err != nil {
		return err
	}
	return svc.AddProvidesPort(ii, "cellChemistry", CellChemistryPortType)
}

func (ii *ImplicitIntegrator) chemistry() ChemistryPort {
	ii.chemOnce.Do(func() {
		p, err := ii.svc.GetPort("chemistry")
		if err != nil {
			panic(err)
		}
		ii.chem = p.(ChemistryPort)
	})
	return ii.chem
}

// counterSource resolves the wired integrator's CounterSource
// capability, or nil when the provider has none.
func (ii *ImplicitIntegrator) counterSource() CounterSource {
	p, err := ii.svc.GetPort("integrator")
	if err != nil {
		return nil
	}
	ii.svc.ReleasePort("integrator")
	cs, _ := p.(CounterSource)
	return cs
}

// Counters implements CounterSource by delegating to the wired
// integrator (the CvodeComponent's cumulative statistics).
func (ii *ImplicitIntegrator) Counters() map[string]float64 {
	if cs := ii.counterSource(); cs != nil {
		return cs.Counters()
	}
	return nil
}

// RestoreCounters implements CounterSource.
func (ii *ImplicitIntegrator) RestoreCounters(m map[string]float64) {
	if cs := ii.counterSource(); cs != nil {
		cs.RestoreCounters(m)
	}
}

// cellRHS is the constant-pressure chemistry RHS over y = [T, Y...].
type cellRHS struct{ ii *ImplicitIntegrator }

// Dim implements RHSPort.
func (cr cellRHS) Dim() int {
	return cr.ii.chemistry().Mechanism().NumSpecies() + 1
}

// Eval implements RHSPort.
func (cr cellRHS) Eval(_ float64, y, ydot []float64) {
	chemPort := cr.ii.chemistry()
	n := chemPort.Mechanism().NumSpecies()
	T := y[0]
	if T < 200 {
		T = 200
	}
	ydot[0] = chemPort.ConstPressure(T, cr.ii.p0, y[1:1+n], ydot[1:1+n])
}

// JacFn implements JacobianRHSPort: the generated kernel's exact
// constant-pressure Jacobian at the adaptor's fixed pressure, or nil
// when the chemistry runs interpreted (the integrator then keeps its
// finite-difference sweep). The kernel call is stateless, so the same
// closure shape is handed to every per-worker solver.
func (cr cellRHS) JacFn() cvode.Jac {
	k := cr.ii.chemistry().Kernel()
	if k == nil {
		return nil
	}
	p0 := cr.ii.p0
	return func(_ float64, y, jac []float64) {
		T := y[0]
		if T < 200 {
			T = 200 // mirror Eval's guard
		}
		k.ConstPressureJacobian(T, p0, y[1:], jac)
	}
}

// cellRef addresses one cell of one patch in the flattened cell list a
// chemistry advance fans out over; level rides along for error reports.
type cellRef struct {
	pd    *field.PatchData
	i, j  int
	level int
}

// appendLevelCells appends every owned interior cell of a level to the
// flattened work list.
func appendLevelCells(cells []cellRef, d *field.DataObject, level int) []cellRef {
	for _, pd := range d.LocalPatches(level) {
		b := pd.Interior()
		for j := b.Lo[1]; j <= b.Hi[1]; j++ {
			for i := b.Lo[0]; i <= b.Hi[0]; i++ {
				cells = append(cells, cellRef{pd, i, j, level})
			}
		}
	}
	return cells
}

// AdvanceChemistry implements CellChemistryPort. The stiff integrations
// are independent across cells (each reads and writes only its own
// column of the field), so they fan out over the execution pool: the
// flattened cell list is chunked contiguously, each worker slot gets a
// private integrator (WorkerIntegratorPort) and scratch vector, and
// cvode.Solver.Init fully resets solver state per cell — so the result
// of every cell is bit-for-bit the serial result regardless of width.
func (ii *ImplicitIntegrator) AdvanceChemistry(mesh MeshPort, name string, level int, dt float64) (int, error) {
	if o := ii.svc.Observability(); o != nil {
		defer o.Span("chem", obsLevelName("chem.implicit", level))()
	}
	d := mesh.Field(name)
	ii.cells = appendLevelCells(ii.cells[:0], d, level)
	return ii.advanceCells(dt)
}

// AdvanceChemistryLevels implements MultiLevelChemistryPort: the cells
// of every level are flattened into one list and advanced in a single
// pool epoch. Per-cell results are independent of which loop delivered
// the cell (the solver is fully re-initialized per cell), so this is
// bit-for-bit the per-level sequence minus NumLevels-1 fork/join
// barriers — fine levels with few cells no longer serialize the pool.
func (ii *ImplicitIntegrator) AdvanceChemistryLevels(mesh MeshPort, name string, dt float64) (int, error) {
	if o := ii.svc.Observability(); o != nil {
		defer o.Span("chem", "chem.implicit all-levels")()
	}
	d := mesh.Field(name)
	ii.cells = ii.cells[:0]
	for l := 0; l < d.Hierarchy().NumLevels(); l++ {
		ii.cells = appendLevelCells(ii.cells, d, l)
	}
	return ii.advanceCells(dt)
}

// advanceCells integrates every cell of ii.cells by dt over the pool.
func (ii *ImplicitIntegrator) advanceCells(dt float64) (int, error) {
	cells := ii.cells
	ip, err := ii.svc.GetPort("integrator")
	if err != nil {
		return 0, err
	}
	ii.svc.ReleasePort("integrator")
	integ := ip.(ImplicitIntegratorPort)
	mech := ii.chemistry().Mechanism() // also pre-fetches the chemistry port
	nsp := mech.NumSpecies()
	ii.nsp = nsp

	pool := optionalPool(ii.svc)
	width := pool.Width()
	wip, canFanOut := integ.(WorkerIntegratorPort)
	if width > len(cells) {
		width = len(cells)
	}
	ints := make([]ImplicitIntegratorPort, width)
	for w := range ints {
		if canFanOut && width > 1 {
			// Created serially here, used exclusively by slot w below.
			ints[w] = wip.WorkerIntegrator(w, width)
		} else {
			ints[w] = integ
		}
	}
	if !canFanOut {
		pool = nil // provider cannot hand out private integrators: stay serial
	}

	ys := make([][]float64, len(ints))
	var failed int32
	var failMu sync.Mutex
	failIdx, failErr := -1, error(nil)
	body := func(w, idx int) {
		if atomic.LoadInt32(&failed) != 0 {
			return
		}
		c := cells[idx]
		y := ys[w]
		if y == nil {
			y = make([]float64, nsp+1)
			ys[w] = y
		}
		y[0] = c.pd.At(0, c.i, c.j)
		for k := 0; k < nsp; k++ {
			y[1+k] = c.pd.At(1+k, c.i, c.j)
		}
		chem.NormalizeY(y[1 : 1+nsp])
		if _, err := ints[w].IntegrateTo(0, dt, y); err != nil {
			atomic.StoreInt32(&failed, 1)
			failMu.Lock()
			if failIdx < 0 || idx < failIdx {
				failIdx = idx
				failErr = fmt.Errorf("cell (%d,%d) level %d: %w", c.i, c.j, c.level, err)
			}
			failMu.Unlock()
			return
		}
		c.pd.Set(0, c.i, c.j, y[0])
		for k := 0; k < nsp; k++ {
			c.pd.Set(1+k, c.i, c.j, y[1+k])
		}
	}
	if pool == nil {
		for idx := range cells {
			body(0, idx)
		}
	} else {
		pool.ForEach(len(cells), body)
	}
	if failErr != nil {
		return failIdx, failErr
	}
	return len(cells), nil
}
