package components

import (
	"fmt"

	"ccahydro/internal/cca"
	"ccahydro/internal/chem"
)

// ImplicitIntegrator is the adaptor that "calls on the Implicit
// Integration subsystem for all cells and all patches" (paper Sec.
// 4.2): for every cell of the named field on a level, it packs the
// cell state [T, Y...] into a vector, advances it through the
// connected implicit integrator (CvodeComponent) against the
// constant-pressure chemistry RHS, and writes the result back.
// Parameter "P" is the open-domain pressure (default 1 atm).
type ImplicitIntegrator struct {
	svc  cca.Services
	p0   float64
	chem ChemistryPort

	// rhs context for the current cell integration.
	nsp int
}

// SetServices implements cca.Component.
func (ii *ImplicitIntegrator) SetServices(svc cca.Services) error {
	ii.svc = svc
	ii.p0 = svc.Parameters().GetFloat("P", chem.PAtm)
	if err := svc.RegisterUsesPort("integrator", ImplicitIntegratorType); err != nil {
		return err
	}
	if err := svc.RegisterUsesPort("chemistry", ChemistryPortType); err != nil {
		return err
	}
	// The adaptor also provides the RHS the CvodeComponent consumes:
	// the wiring loops CvodeComponent.rhs -> ImplicitIntegrator.cellRHS.
	if err := svc.AddProvidesPort(cellRHS{ii}, "cellRHS", RHSPortType); err != nil {
		return err
	}
	return svc.AddProvidesPort(ii, "cellChemistry", CellChemistryPortType)
}

func (ii *ImplicitIntegrator) chemistry() ChemistryPort {
	if ii.chem == nil {
		p, err := ii.svc.GetPort("chemistry")
		if err != nil {
			panic(err)
		}
		ii.chem = p.(ChemistryPort)
	}
	return ii.chem
}

// cellRHS is the constant-pressure chemistry RHS over y = [T, Y...].
type cellRHS struct{ ii *ImplicitIntegrator }

// Dim implements RHSPort.
func (cr cellRHS) Dim() int {
	return cr.ii.chemistry().Mechanism().NumSpecies() + 1
}

// Eval implements RHSPort.
func (cr cellRHS) Eval(_ float64, y, ydot []float64) {
	chemPort := cr.ii.chemistry()
	n := chemPort.Mechanism().NumSpecies()
	T := y[0]
	if T < 200 {
		T = 200
	}
	ydot[0] = chemPort.ConstPressure(T, cr.ii.p0, y[1:1+n], ydot[1:1+n])
}

// AdvanceChemistry implements CellChemistryPort.
func (ii *ImplicitIntegrator) AdvanceChemistry(mesh MeshPort, name string, level int, dt float64) (int, error) {
	ip, err := ii.svc.GetPort("integrator")
	if err != nil {
		return 0, err
	}
	ii.svc.ReleasePort("integrator")
	integ := ip.(ImplicitIntegratorPort)
	mech := ii.chemistry().Mechanism()
	nsp := mech.NumSpecies()
	ii.nsp = nsp
	d := mesh.Field(name)
	y := make([]float64, nsp+1)
	cells := 0
	for _, pd := range d.LocalPatches(level) {
		b := pd.Interior()
		for j := b.Lo[1]; j <= b.Hi[1]; j++ {
			for i := b.Lo[0]; i <= b.Hi[0]; i++ {
				y[0] = pd.At(0, i, j)
				for k := 0; k < nsp; k++ {
					y[1+k] = pd.At(1+k, i, j)
				}
				chem.NormalizeY(y[1 : 1+nsp])
				if _, err := integ.IntegrateTo(0, dt, y); err != nil {
					return cells, fmt.Errorf("cell (%d,%d) level %d: %w", i, j, level, err)
				}
				pd.Set(0, i, j, y[0])
				for k := 0; k < nsp; k++ {
					pd.Set(1+k, i, j, y[1+k])
				}
				cells++
			}
		}
	}
	return cells, nil
}
