package components

import (
	"ccahydro/internal/amr"
	"ccahydro/internal/cca"
)

// The paper's future work item (1) includes "an effort to define
// interfaces to load-balancers prior to testing a number of them."
// BalancerPort is that interface, and BalancerComponent packages the
// repository's balancers behind it so a mesh can be rewired to a
// different distribution policy without recompilation — the same
// swap-a-component move as GodunovFlux -> EFMFlux.

// BalancerPortType identifies load-balancer provides ports.
const BalancerPortType = "samr.LoadBalancerPort"

// BalancerPort assigns patches to ranks.
type BalancerPort interface {
	amr.LoadBalancer
	// PolicyName identifies the active policy.
	PolicyName() string
}

// BalancerComponent provides a BalancerPort. The "policy" parameter
// selects "greedy" (LPT bin packing, the default) or "sfc" (Morton
// space-filling-curve segments).
type BalancerComponent struct {
	policy string
	inner  amr.LoadBalancer
}

// SetServices implements cca.Component.
func (bc *BalancerComponent) SetServices(svc cca.Services) error {
	bc.policy = svc.Parameters().GetString("policy", "greedy")
	switch bc.policy {
	case "sfc":
		bc.inner = amr.SFCBalancer{}
	default:
		bc.policy = "greedy"
		bc.inner = amr.GreedyBalancer{}
	}
	return svc.AddProvidesPort(bc, "balancer", BalancerPortType)
}

// Assign implements amr.LoadBalancer.
func (bc *BalancerComponent) Assign(boxes []amr.Box, level, nranks int, work amr.Workload) []int {
	return bc.inner.Assign(boxes, level, nranks, work)
}

// PolicyName implements BalancerPort.
func (bc *BalancerComponent) PolicyName() string { return bc.policy }
