package components

import (
	"fmt"
	"math"
	"strconv"

	"ccahydro/internal/amr"
	"ccahydro/internal/cca"
	"ccahydro/internal/ckpt"
	"ccahydro/internal/euler"
	"ccahydro/internal/field"
	"ccahydro/internal/mpi"
	"ccahydro/internal/telemetry"
)

// ShockDriver orchestrates the 2D shock–interface interaction (paper
// Sec. 4.3, Fig 5): CFL-controlled RK2 advance over all levels,
// periodic regridding around the shocks and the gas–gas interface, and
// the interfacial-circulation diagnostic of Fig 7. Parameters:
//
//	tEnd         end time in shock-crossing units (default 1.0)
//	maxSteps     hard step cap (default 10000)
//	regridEvery  steps between regrids, 0 = off (default 5)
//	cfl          Courant number passed to dt control (informative)
//	field        conserved field name (default "U")
//
// shockDriverName tags checkpoints written by this driver.
const shockDriverName = "shock"

type ShockDriver struct {
	svc cca.Services

	// Results.
	Times, Circulations []float64
	Steps               int
	FinalTime           float64

	// dts mirrors the per-step dt series so it survives checkpoint
	// round-trips like Times/Circulations do.
	dts []float64
}

// SetServices implements cca.Component.
func (sd *ShockDriver) SetServices(svc cca.Services) error {
	sd.svc = svc
	for _, u := range [][2]string{
		{"mesh", MeshPortType},
		{"ic", ICFieldPortType},
		{"integrator", ExplicitIntegratorType},
		{"characteristics", CharacteristicsPortType},
		{"regrid", RegridPortType},
		{"stats", StatsPortType},
		{"gasProperties", KeyValuePortType},
		{"bc", BCPortType},
		{"checkpoint", CheckpointPortType},
	} {
		if err := svc.RegisterUsesPort(u[0], u[1]); err != nil {
			return err
		}
	}
	if err := registerExecPort(svc); err != nil {
		return err
	}
	return svc.AddProvidesPort(cca.GoPort(goFunc(sd.run)), "go", cca.GoPortType)
}

func (sd *ShockDriver) port(name string) cca.Port {
	p, err := sd.svc.GetPort(name)
	if err != nil {
		panic(fmt.Sprintf("ShockDriver: %v", err))
	}
	sd.svc.ReleasePort(name)
	return p
}

func (sd *ShockDriver) optionalPort(name string) cca.Port {
	p, err := sd.svc.GetPort(name)
	if err != nil {
		return nil
	}
	sd.svc.ReleasePort(name)
	return p
}

func (sd *ShockDriver) run() error {
	params := sd.svc.Parameters()
	tEnd := params.GetFloat("tEnd", 1.0)
	maxSteps := params.GetInt("maxSteps", 10000)
	regridEvery := params.GetInt("regridEvery", 5)
	name := params.GetString("field", "U")

	mesh := sd.port("mesh").(MeshPort)
	icPort := sd.port("ic").(ICFieldPort)
	integ := sd.port("integrator").(ExplicitIntegratorPort)
	chars := sd.port("characteristics").(CharacteristicsPort)
	bc := sd.port("bc").(BCPort)
	db := sd.port("gasProperties").(KeyValuePort)
	var regrid RegridPort
	if p := sd.optionalPort("regrid"); p != nil {
		regrid = p.(RegridPort)
	}
	var stats StatsPort
	if p := sd.optionalPort("stats"); p != nil {
		stats = p.(StatsPort)
	}
	var ck CheckpointPort
	if p := sd.optionalPort("checkpoint"); p != nil {
		ck = p.(CheckpointPort)
	}

	// Restore before the fresh check (see RDDriver): adopted fields make
	// the run continue from the checkpointed state instead of the IC.
	var restored *ckpt.Meta
	if ck != nil {
		m, err := ck.Restore(shockDriverName)
		if err != nil {
			return err
		}
		restored = m
	}

	fresh := mesh.Field(name) == nil
	mesh.Declare(name, euler.NumComp, 2)
	if fresh {
		// First Go: impose the IC and build the initial hierarchy.
		// Subsequent Go calls (or a restart that Adopted a restored
		// field) continue from the current data.
		icPort.Impose(mesh, name)
		if regrid != nil && regridEvery > 0 {
			for pass := 0; pass < mesh.Hierarchy().MaxLevels-1; pass++ {
				if !regrid.EstimateAndRegrid(mesh, name) {
					break
				}
				icPort.Impose(mesh, name)
			}
		}
	}

	gamma, ok := db.Value("gamma")
	if !ok {
		gamma = euler.AirGamma
	}

	obsSession := sd.svc.Observability()
	tel := sd.svc.Telemetry()
	t := 0.0
	step0 := 0
	if restored != nil {
		t = restored.Time
		step0 = restored.Step + 1
		sd.Steps = step0
		sd.Times = append([]float64(nil), restored.Series["t"]...)
		sd.Circulations = append([]float64(nil), restored.Series["circulation"]...)
		sd.dts = append([]float64(nil), restored.Series["dt"]...)
		// Replay the reinstated history into the statistics port so a
		// resumed run streams the whole Fig 7 curve, not just its tail.
		if stats != nil {
			for i := range sd.Times {
				stats.Record("t", sd.Times[i])
				if i < len(sd.Circulations) {
					stats.Record("circulation", sd.Circulations[i])
				}
				if i < len(sd.dts) {
					stats.Record("dt", sd.dts[i])
				}
			}
		}
	}
	for step := step0; step < maxSteps && t < tEnd; step++ {
		if c := sd.svc.Comm(); c != nil {
			c.NoteStep(step)
		}
		tel.NoteStep(step)
		var stepSpan func()
		if obsSession != nil {
			stepSpan = obsSession.Span("driver", "shock.step "+strconv.Itoa(step))
		}
		// Global stable dt: min over levels, reduced in the port.
		dt := math.Inf(1)
		h := mesh.Hierarchy()
		for l := 0; l < h.NumLevels(); l++ {
			if v := chars.StableDt(mesh, name, l); v < dt {
				dt = v
			}
		}
		if math.IsInf(dt, 0) || dt <= 0 {
			return fmt.Errorf("shock driver: bad dt %v at t=%v", dt, t)
		}
		if t+dt > tEnd {
			dt = tEnd - t
		}
		for l := 0; l < h.NumLevels(); l++ {
			if err := integ.AdvanceLevel(mesh, name, l, t, t+dt); err != nil {
				return err
			}
		}
		d := mesh.Field(name)
		for l := h.NumLevels() - 1; l >= 1; l-- {
			d.RestrictLevel(l)
		}
		t += dt
		sd.Steps++

		gammaC := sd.compositeCirculation(mesh, name, gamma, bc)
		sd.Times = append(sd.Times, t)
		sd.Circulations = append(sd.Circulations, gammaC)
		sd.dts = append(sd.dts, dt)
		if stats != nil {
			stats.Record("t", t)
			stats.Record("circulation", gammaC)
			stats.Record("dt", dt)
		}

		if regrid != nil && regridEvery > 0 && (step+1)%regridEvery == 0 {
			if regrid.EstimateAndRegrid(mesh, name) {
				tel.Emit(telemetry.EvRegrid, step, "")
			}
		}
		// Checkpoint after the regrid so a continuation sees the exact
		// hierarchy the next step starts from. The circulation series
		// rides along in Meta.Series (restore reinstates Fig 7's curve).
		if ck != nil {
			meta := ckpt.Meta{Driver: shockDriverName, Step: step, Time: t,
				Series: map[string][]float64{"t": sd.Times, "circulation": sd.Circulations, "dt": sd.dts}}
			if err := ck.SaveIfDue(meta); err != nil {
				return err
			}
		}
		if stepSpan != nil {
			stepSpan()
		}
	}
	sd.FinalTime = t
	if ck != nil {
		if err := ck.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// compositeCirculation evaluates Γ on the composite grid: each level
// contributes only cells not covered by finer patches, and the result
// is summed across the cohort. Patch contributions are computed in
// parallel into per-patch partials and folded in patch order, so the
// floating-point sum is independent of worker count.
func (sd *ShockDriver) compositeCirculation(mesh MeshPort, name string, gamma float64, bc BCPort) float64 {
	d := mesh.Field(name)
	h := d.Hierarchy()
	s := &euler.Solver{Gas: euler.Gas{Gamma: gamma}}
	pool := optionalPool(sd.svc)
	var total float64
	for l := 0; l < h.NumLevels(); l++ {
		dx, dy := mesh.Spacing(l)
		// Ghosts must be valid for the vorticity stencil (collective:
		// stays on the calling goroutine).
		if l > 0 {
			d.FillCoarseFineGhosts(l, field.ProlongLinear)
		}
		d.ExchangeGhosts(l)
		bc.Apply(name, l)
		var finer []amr.Box
		if l+1 < h.NumLevels() {
			for _, fp := range h.Level(l + 1).Patches {
				finer = append(finer, fp.Box.Coarsen(h.Ratio))
			}
		}
		patches := d.LocalPatches(l)
		partial := make([]float64, len(patches))
		pool.ForEach(len(patches), func(_, n int) {
			pd := patches[n]
			// Uncovered parts of this patch.
			parts := []amr.Box{pd.Interior()}
			for _, fb := range finer {
				var next []amr.Box
				for _, p := range parts {
					next = append(next, p.Subtract(fb)...)
				}
				parts = next
			}
			var sum float64
			for _, region := range parts {
				sum += circulationRegion(s, pd, region, dx, dy)
			}
			partial[n] = sum
		})
		for _, p := range partial {
			total += p
		}
	}
	if comm := sd.svc.Comm(); comm != nil && comm.Size() > 1 {
		total = comm.AllreduceScalar(mpi.OpSum, total)
	}
	return total
}

// circulationRegion is euler.Solver.Circulation restricted to a region.
func circulationRegion(s *euler.Solver, pd *field.PatchData, region amr.Box, dx, dy float64) float64 {
	var gamma float64
	vel := func(i, j int) (float64, float64) {
		rho := pd.At(euler.IRho, i, j)
		if rho < 1e-12 {
			rho = 1e-12
		}
		return pd.At(euler.IMx, i, j) / rho, pd.At(euler.IMy, i, j) / rho
	}
	for j := region.Lo[1]; j <= region.Hi[1]; j++ {
		for i := region.Lo[0]; i <= region.Hi[0]; i++ {
			z := pd.At(euler.IZeta, i, j) / math.Max(pd.At(euler.IRho, i, j), 1e-12)
			if z < 0.001 || z > 0.999 {
				continue
			}
			_, vE := vel(i+1, j)
			_, vW := vel(i-1, j)
			uN, _ := vel(i, j+1)
			uS, _ := vel(i, j-1)
			om := (vE-vW)/(2*dx) - (uN-uS)/(2*dy)
			gamma += om * dx * dy
		}
	}
	return gamma
}
