package components

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"ccahydro/internal/amr"
	"ccahydro/internal/cca"
	"ccahydro/internal/cvode"
	"ccahydro/internal/field"
)

// The paper's future work item (4): "By using TAU, we intend to
// characterize the performance characteristics of individual components
// and their assemblies." This file implements that plan: a TAU-style
// timing component plus a proxy component that interposes on a port
// connection and measures every invocation crossing it — the standard
// CCA instrumentation pattern (the proxy provides and uses the same
// port type, so it splices into any wire without touching either end).

// TimingPortType identifies the measurement port.
const TimingPortType = "perf.TimingPort"

// TimingEntry is one timer's accumulated statistics.
type TimingEntry struct {
	Name    string
	Calls   int
	Seconds float64
}

// TimingPort collects named timers (the TAU analogue).
type TimingPort interface {
	// Record adds one observation.
	Record(name string, seconds float64)
	// Time wraps f with a timer.
	Time(name string, f func())
	// Summary returns entries sorted by descending total time.
	Summary() []TimingEntry
}

// TauTimer provides TimingPort — the measurement sink for instrumented
// assemblies.
type TauTimer struct {
	mu      sync.Mutex
	calls   map[string]int
	seconds map[string]float64
}

// SetServices implements cca.Component.
func (tt *TauTimer) SetServices(svc cca.Services) error {
	tt.calls = make(map[string]int)
	tt.seconds = make(map[string]float64)
	return svc.AddProvidesPort(tt, "timing", TimingPortType)
}

// Record implements TimingPort.
func (tt *TauTimer) Record(name string, seconds float64) {
	tt.mu.Lock()
	tt.calls[name]++
	tt.seconds[name] += seconds
	tt.mu.Unlock()
}

// Time implements TimingPort.
func (tt *TauTimer) Time(name string, f func()) {
	start := time.Now()
	f()
	tt.Record(name, time.Since(start).Seconds())
}

// Summary implements TimingPort.
func (tt *TauTimer) Summary() []TimingEntry {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	out := make([]TimingEntry, 0, len(tt.calls))
	for name, n := range tt.calls {
		out = append(out, TimingEntry{Name: name, Calls: n, Seconds: tt.seconds[name]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seconds > out[j].Seconds })
	return out
}

// WriteReport renders the summary as text.
func (tt *TauTimer) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "%-32s %10s %14s %14s\n", "timer", "calls", "total (s)", "per call (s)")
	for _, e := range tt.Summary() {
		per := 0.0
		if e.Calls > 0 {
			per = e.Seconds / float64(e.Calls)
		}
		fmt.Fprintf(w, "%-32s %10d %14.6f %14.9f\n", e.Name, e.Calls, e.Seconds, per)
	}
}

// RHSMonitor is a proxy component that splices into an ode.RHSPort
// wire: it uses the real RHS ("inner") and a TimingPort, and provides
// an identically typed "rhs" port that delegates while measuring. The
// instance name labels the timer, so multiple monitors can share one
// TauTimer.
type RHSMonitor struct {
	svc   cca.Services
	inner RHSPort
	tp    TimingPort
	label string
	// once guards the lazy port fetch: Eval may first run on pool
	// goroutines when the downstream integrator fans out.
	once sync.Once
}

// SetServices implements cca.Component.
func (rm *RHSMonitor) SetServices(svc cca.Services) error {
	rm.svc = svc
	rm.label = svc.Parameters().GetString("label", svc.InstanceName())
	if err := svc.RegisterUsesPort("inner", RHSPortType); err != nil {
		return err
	}
	if err := svc.RegisterUsesPort("timing", TimingPortType); err != nil {
		return err
	}
	return svc.AddProvidesPort(rm, "rhs", RHSPortType)
}

func (rm *RHSMonitor) fetch() {
	rm.once.Do(func() {
		p, err := rm.svc.GetPort("inner")
		if err != nil {
			panic(err)
		}
		rm.inner = p.(RHSPort)
		tp, err := rm.svc.GetPort("timing")
		if err != nil {
			panic(err)
		}
		rm.tp = tp.(TimingPort)
	})
}

// Dim implements RHSPort.
func (rm *RHSMonitor) Dim() int {
	rm.fetch()
	return rm.inner.Dim()
}

// Eval implements RHSPort: delegate and record.
func (rm *RHSMonitor) Eval(t float64, y, ydot []float64) {
	rm.fetch()
	start := time.Now()
	rm.inner.Eval(t, y, ydot)
	rm.tp.Record(rm.label, time.Since(start).Seconds())
}

// JacFn implements JacobianRHSPort: the monitor forwards the analytic
// Jacobian capability when the wrapped RHS offers one, timing builds
// under "<label>.jac" — splicing a monitor into a wire must never
// silently downgrade the solver to finite differences.
func (rm *RHSMonitor) JacFn() cvode.Jac {
	rm.fetch()
	jp, ok := rm.inner.(JacobianRHSPort)
	if !ok {
		return nil
	}
	fn := jp.JacFn()
	if fn == nil {
		return nil
	}
	label := rm.label + ".jac"
	return func(t float64, y, jac []float64) {
		start := time.Now()
		fn(t, y, jac)
		rm.tp.Record(label, time.Since(start).Seconds())
	}
}

// PatchRHSMonitor is the same proxy for samr.PatchRHSPort wires (the
// flame's diffusion RHS and the shock's inviscid flux both flow through
// that port type).
type PatchRHSMonitor struct {
	svc   cca.Services
	inner PatchRHSPort
	tp    TimingPort
	label string
	// once guards the lazy port fetch: EvalPatch/EvalRegion run on
	// pool goroutines inside the level drivers' fan-outs.
	once sync.Once
}

// SetServices implements cca.Component.
func (pm *PatchRHSMonitor) SetServices(svc cca.Services) error {
	pm.svc = svc
	pm.label = svc.Parameters().GetString("label", svc.InstanceName())
	if err := svc.RegisterUsesPort("inner", PatchRHSPortType); err != nil {
		return err
	}
	if err := svc.RegisterUsesPort("timing", TimingPortType); err != nil {
		return err
	}
	return svc.AddProvidesPort(pm, "patchRHS", PatchRHSPortType)
}

func (pm *PatchRHSMonitor) fetch() {
	pm.once.Do(func() {
		p, err := pm.svc.GetPort("inner")
		if err != nil {
			panic(err)
		}
		pm.inner = p.(PatchRHSPort)
		tp, err := pm.svc.GetPort("timing")
		if err != nil {
			panic(err)
		}
		pm.tp = tp.(TimingPort)
	})
}

// EvalPatch implements PatchRHSPort.
func (pm *PatchRHSMonitor) EvalPatch(pd, out *field.PatchData, dx, dy float64) {
	pm.fetch()
	start := time.Now()
	pm.inner.EvalPatch(pd, out, dx, dy)
	pm.tp.Record(pm.label, time.Since(start).Seconds())
}

// SupportsRegion reports whether the wrapped component provides
// RegionRHSPort; drivers consult it (via regionRHS) before engaging
// the overlapped split through the proxy.
func (pm *PatchRHSMonitor) SupportsRegion() bool {
	pm.fetch()
	_, ok := pm.inner.(RegionRHSPort)
	return ok
}

// EvalRegion passes RegionRHSPort through the proxy when the inner
// component offers it, so splicing a monitor into a wire does not
// silently disable the drivers' exchange/compute overlap.
func (pm *PatchRHSMonitor) EvalRegion(pd, out *field.PatchData, region amr.Box, dx, dy float64) {
	pm.fetch()
	rr, ok := pm.inner.(RegionRHSPort)
	if !ok {
		panic("components: PatchRHSMonitor inner port does not provide EvalRegion")
	}
	start := time.Now()
	rr.EvalRegion(pd, out, region, dx, dy)
	pm.tp.Record(pm.label, time.Since(start).Seconds())
}
