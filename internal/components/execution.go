package components

import (
	"ccahydro/internal/cca"
	"ccahydro/internal/exec"
)

// ExecutionComponent provides the worker pool behind every
// patch-parallel and cell-parallel loop in the repo. It is the CCA
// face of internal/exec: assemblies that want explicit control over
// intra-rank parallelism instantiate it, set the "workers" parameter,
// and connect it to the drivers' and integrators' optional "exec" uses
// ports. The pool is created lazily on first Pool() call so that
// instantiating the component costs nothing.
//
// Parameters:
//
//	workers — pool width (max concurrent kernels). 0 or unset means
//	          runtime.GOMAXPROCS(0); SCMD rank-parallel assemblies pin
//	          it to 1 so the rank goroutines are the only parallelism.
type ExecutionComponent struct {
	svc  cca.Services
	pool *exec.Pool
}

var _ ExecutionPort = (*ExecutionComponent)(nil)

func (ec *ExecutionComponent) SetServices(svc cca.Services) error {
	ec.svc = svc
	return svc.AddProvidesPort(ec, "exec", ExecutionPortType)
}

// Pool returns the component's pool, creating it on first use from the
// "workers" parameter. Width 0 (or no parameter) delegates to the
// process default so an unparameterized ExecutionComponent behaves
// exactly like an unconnected exec port.
func (ec *ExecutionComponent) Pool() *exec.Pool {
	if ec.pool == nil {
		w := 0
		if ec.svc != nil {
			w = ec.svc.Parameters().GetInt("workers", 0)
		}
		if w <= 0 {
			ec.pool = exec.Default()
		} else {
			ec.pool = exec.NewPool(w)
			// Private pools can carry the framework's tracer (the
			// shared default pool serves every rank, so per-rank
			// worker tracks would interleave there) and feed the
			// epoch-join tail into the pool_epoch_wait histogram.
			if ec.svc != nil {
				if o := ec.svc.Observability(); o != nil {
					ec.pool.SetTracer(o.Tracer())
					ec.pool.SetEpochWaitHistogram(o.Metrics().Histogram("pool_epoch_wait"))
				}
			}
		}
	}
	return ec.pool
}

// registerExecPort declares the optional "exec" uses port on a
// component. Errors are impossible for a fresh name; the helper keeps
// SetServices bodies tidy.
func registerExecPort(svc cca.Services) error {
	return svc.RegisterUsesPort("exec", ExecutionPortType)
}

// optionalPool resolves a component's optional "exec" uses port,
// falling back to the process-wide default pool when the port is
// unconnected (the standard paper assemblies, which predate the
// ExecutionComponent, keep working unchanged and still parallelize).
func optionalPool(svc cca.Services) *exec.Pool {
	if svc != nil {
		if p, err := svc.GetPort("exec"); err == nil {
			ep, ok := p.(ExecutionPort)
			svc.ReleasePort("exec")
			if ok {
				return ep.Pool()
			}
		}
	}
	return exec.Default()
}
