package components

import (
	"sort"
	"sync"
	"testing"
)

// TestStatisticsComponentGetReturnsCopy pins the aliasing contract:
// the slice Get hands out is the caller's to keep and mutate, and
// recording after a Get never changes a previously taken snapshot.
func TestStatisticsComponentGetReturnsCopy(t *testing.T) {
	sc := &StatisticsComponent{series: make(map[string][]float64)}
	sc.Record("x", 1)
	sc.Record("x", 2)
	snap := sc.Get("x")
	snap[0] = -99     // caller mutation
	sc.Record("x", 3) // growth after the snapshot
	if got := sc.Get("x"); got[0] != 1 || len(got) != 3 {
		t.Errorf("stored series corrupted or wrong length: %v", got)
	}
	if len(snap) != 2 {
		t.Errorf("snapshot changed length: %v", snap)
	}
	if sc.Get("missing") != nil {
		t.Error("Get of an unknown key should be nil")
	}
}

// TestStatisticsComponentKeysSorted pins the ordering guarantee
// exporters rely on for deterministic output.
func TestStatisticsComponentKeysSorted(t *testing.T) {
	sc := &StatisticsComponent{series: make(map[string][]float64)}
	for _, k := range []string{"zeta", "alpha", "mid", "beta"} {
		sc.Record(k, 0)
	}
	keys := sc.Keys()
	if !sort.StringsAreSorted(keys) || len(keys) != 4 {
		t.Errorf("Keys = %v, want 4 sorted names", keys)
	}
}

// TestStatisticsComponentConcurrentAccess exercises the full read/write
// surface from many goroutines at once; run under -race this is the
// data-race gate for the stats provider.
func TestStatisticsComponentConcurrentAccess(t *testing.T) {
	sc := &StatisticsComponent{series: make(map[string][]float64)}
	keys := []string{"a", "b", "c"}
	const writers, readers, perWriter = 4, 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sc.Record(keys[(w+i)%len(keys)], float64(i))
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				for _, k := range sc.Keys() {
					if s := sc.Get(k); len(s) > 0 {
						s[0] = -1 // a reader may scribble on its copy
					}
				}
			}
		}()
	}
	wg.Wait()
	var total int
	for _, k := range keys {
		s := sc.Get(k)
		for _, v := range s {
			if v < 0 {
				t.Fatalf("reader mutation leaked into series %q", k)
			}
		}
		total += len(s)
	}
	if total != writers*perWriter {
		t.Errorf("recorded %d samples, want %d", total, writers*perWriter)
	}
}
