package components

import (
	"fmt"
	"sort"
	"sync"

	"ccahydro/internal/amr"
	"ccahydro/internal/cca"
	"ccahydro/internal/field"
)

// GrACEComponent is the componentized SAMR data manager (the paper
// wraps the GrACE library the same way): it accommodates the Mesh,
// Data Object, and (default) Boundary Condition subsystems. Parameters:
//
//	nx, ny        coarse mesh cells (default 100 x 100)
//	lx, ly        physical domain size in meters (default 0.01, the
//	              paper's 10 mm square)
//	ratio         refinement ratio (default 2)
//	maxLevels     hierarchy depth cap (default 3)
//	maxPatchCells patch split threshold (default 4096)
type GrACEComponent struct {
	svc cca.Services

	mu        sync.Mutex
	h         *amr.Hierarchy
	fields    map[string]*field.DataObject
	bcs       map[string]field.BCSet
	lx, ly    float64
	regridOpt amr.RegridOptions
}

// SetServices implements cca.Component.
func (gc *GrACEComponent) SetServices(svc cca.Services) error {
	gc.svc = svc
	p := svc.Parameters()
	nx := p.GetInt("nx", 100)
	ny := p.GetInt("ny", 100)
	gc.lx = p.GetFloat("lx", 0.01)
	gc.ly = p.GetFloat("ly", 0.01)
	ratio := p.GetInt("ratio", 2)
	maxLevels := p.GetInt("maxLevels", 3)
	ranks := 1
	if comm := svc.Comm(); comm != nil {
		ranks = comm.Size()
	}
	gc.h = amr.NewHierarchy(amr.NewBox(0, 0, nx-1, ny-1), ratio, maxLevels, ranks)
	gc.fields = make(map[string]*field.DataObject)
	gc.bcs = make(map[string]field.BCSet)
	gc.regridOpt = amr.DefaultRegridOptions
	gc.regridOpt.MaxPatchCells = p.GetInt("maxPatchCells", 4096)
	// Optional: a load-balancer component may be wired in to replace
	// the default greedy policy (paper future work: load-balancer
	// interfaces). Unconnected is fine.
	if err := svc.RegisterUsesPort("balancer", BalancerPortType); err != nil {
		return err
	}
	if err := svc.AddProvidesPort(gc, "mesh", MeshPortType); err != nil {
		return err
	}
	if err := svc.AddProvidesPort(gc, "data", DataPortType); err != nil {
		return err
	}
	return svc.AddProvidesPort(gc, "bc", BCPortType)
}

// Hierarchy implements MeshPort.
func (gc *GrACEComponent) Hierarchy() *amr.Hierarchy {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.h
}

// Declare implements MeshPort.
func (gc *GrACEComponent) Declare(name string, ncomp, ghost int) *field.DataObject {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	if d, ok := gc.fields[name]; ok {
		return d
	}
	d := field.New(name, gc.h, ncomp, ghost, gc.svc.Comm())
	d.SetObs(gc.svc.Observability())
	gc.fields[name] = d
	gc.bcs[name] = field.UniformBC(field.BCSpec{Kind: field.BCOutflow})
	return d
}

// Field implements MeshPort.
func (gc *GrACEComponent) Field(name string) *field.DataObject {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.fields[name]
}

// SetBCSet overrides the boundary rule for a declared field (used by
// the hydro BoundaryConditions component to install reflecting walls).
func (gc *GrACEComponent) SetBCSet(name string, bcs field.BCSet) error {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	if _, ok := gc.fields[name]; !ok {
		return fmt.Errorf("grace: field %q not declared", name)
	}
	gc.bcs[name] = bcs
	return nil
}

// Regrid implements MeshPort: rebuild the hierarchy from flags and
// remap every declared field onto it (prolongation where no old data
// overlaps). Collective across the cohort.
func (gc *GrACEComponent) Regrid(flags []*amr.FlagField, opt amr.RegridOptions) {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	if o := gc.svc.Observability(); o != nil {
		defer o.Span("samr", "regrid")()
	}
	if opt.Cluster.Efficiency == 0 {
		opt = gc.regridOpt
	}
	// Build the new hierarchy alongside the old one so data can move.
	newH := amr.NewHierarchy(gc.h.Domain, gc.h.Ratio, gc.h.MaxLevels, gc.h.NumRanks)
	newH.Balancer = gc.h.Balancer
	if p, err := gc.svc.GetPort("balancer"); err == nil {
		newH.Balancer = p.(BalancerPort)
		gc.svc.ReleasePort("balancer")
	}
	newH.Regrids = gc.h.Regrids
	newH.Regrid(flags, opt)
	for name, d := range gc.fields {
		gc.fields[name] = d.Remap(newH, field.ProlongLinear)
	}
	gc.h = newH
}

// RegridPolicy reports the load balancer and workload estimator the
// next Regrid would use (the wired balancer port when present, else the
// hierarchy's own). Elastic restore repartitions a checkpointed
// hierarchy through this same policy so the restored layout is exactly
// the one a native run at the new rank count would be using.
func (gc *GrACEComponent) RegridPolicy() (amr.LoadBalancer, amr.Workload) {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	bal := gc.h.Balancer
	if p, err := gc.svc.GetPort("balancer"); err == nil {
		bal = p.(BalancerPort)
		gc.svc.ReleasePort("balancer")
	}
	return bal, gc.regridOpt.Workload
}

// Spacing implements MeshPort.
func (gc *GrACEComponent) Spacing(level int) (float64, float64) {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	nx, ny := gc.h.Domain.Size()
	dx0 := gc.lx / float64(nx)
	dy0 := gc.ly / float64(ny)
	return amr.MeshSpacing(dx0, gc.h.Ratio, level), amr.MeshSpacing(dy0, gc.h.Ratio, level)
}

// ExchangeGhosts implements DataPort.
func (gc *GrACEComponent) ExchangeGhosts(name string, level int) {
	gc.Field(name).ExchangeGhosts(level)
}

// FillCoarseFineGhosts implements DataPort.
func (gc *GrACEComponent) FillCoarseFineGhosts(name string, level int) {
	gc.Field(name).FillCoarseFineGhosts(level, field.ProlongLinear)
}

// Restrict implements DataPort.
func (gc *GrACEComponent) Restrict(name string, level int) {
	gc.Field(name).RestrictLevel(level)
}

// ProlongNewLevel implements DataPort.
func (gc *GrACEComponent) ProlongNewLevel(name string, level int) {
	gc.Field(name).ProlongLevel(level, field.ProlongLinear)
}

// Apply implements BCPort with the per-field rule (default outflow).
func (gc *GrACEComponent) Apply(name string, level int) {
	gc.mu.Lock()
	bcs := gc.bcs[name]
	d := gc.fields[name]
	gc.mu.Unlock()
	d.ApplyPhysicalBCs(level, bcs)
}

// Adopt installs a restored DataObject (and its hierarchy) as this
// mesh's state — the restart path: read a checkpoint shard with
// field.ReadCheckpoint, Adopt it, and fire the driver, which continues
// from the restored field instead of re-imposing initial conditions.
// Other previously declared fields are dropped (a restart re-declares
// them against the restored hierarchy).
func (gc *GrACEComponent) Adopt(name string, d *field.DataObject) {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	gc.h = d.Hierarchy()
	gc.fields = map[string]*field.DataObject{name: d}
	gc.bcs = map[string]field.BCSet{name: field.UniformBC(field.BCSpec{Kind: field.BCOutflow})}
}

// AdoptAll installs a restored hierarchy and complete field set — the
// checkpoint-restore path. All fields must share one hierarchy. Default
// outflow BCs are installed; components that override BCs (the hydro
// BoundaryConditions component) re-apply their rules on first use, and
// the restored arrays already contain fully exchanged ghosts, so no BC
// application is needed before the first step anyway.
func (gc *GrACEComponent) AdoptAll(fields map[string]*field.DataObject) error {
	if len(fields) == 0 {
		return fmt.Errorf("grace: AdoptAll with no fields")
	}
	var h *amr.Hierarchy
	for _, d := range fields {
		if h == nil {
			h = d.Hierarchy()
		} else if d.Hierarchy() != h {
			return fmt.Errorf("grace: AdoptAll fields disagree on hierarchy")
		}
	}
	gc.mu.Lock()
	defer gc.mu.Unlock()
	gc.h = h
	gc.fields = make(map[string]*field.DataObject, len(fields))
	gc.bcs = make(map[string]field.BCSet, len(fields))
	for name, d := range fields {
		gc.fields[name] = d
		gc.bcs[name] = field.UniformBC(field.BCSpec{Kind: field.BCOutflow})
	}
	return nil
}

// FieldNames lists the declared fields in sorted order — the checkpoint
// writer's iteration set.
func (gc *GrACEComponent) FieldNames() []string {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	names := make([]string, 0, len(gc.fields))
	for name := range gc.fields {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// FillAllGhosts performs the full ghost protocol for one level: physical
// BCs, coarse–fine interpolation, then same-level exchange (which
// overrides interpolated ghosts wherever real neighbors exist).
func (gc *GrACEComponent) FillAllGhosts(name string, level int) {
	if level > 0 {
		gc.Apply(name, level-1)
		gc.FillCoarseFineGhosts(name, level)
	}
	gc.ExchangeGhosts(name, level)
	gc.Apply(name, level)
}
