package components

import (
	"fmt"

	"ccahydro/internal/cca"
)

// IgnitionDriver orchestrates the 0D ignition run (paper Sec. 4.1,
// Fig 1): fetch the initial state, hand the state vector to the
// implicit integration subsystem in output segments, and record the
// temperature/pressure trajectory plus the ignition delay (time of
// peak dT/dt). Parameters: "tEnd" (s, default 1e-3, the paper's 1 ms)
// and "nOut" (trajectory samples, default 50).
type IgnitionDriver struct {
	svc cca.Services

	// Results, readable after Go.
	Times, Temps, Pressures []float64
	IgnitionDelay           float64
	FinalY                  []float64
}

// SetServices implements cca.Component.
func (dr *IgnitionDriver) SetServices(svc cca.Services) error {
	dr.svc = svc
	for _, u := range [][2]string{
		{"ic", ICStatePortType},
		{"integrator", ImplicitIntegratorType},
		{"chemistry", ChemistryPortType},
		{"stats", StatsPortType},
	} {
		if err := svc.RegisterUsesPort(u[0], u[1]); err != nil {
			return err
		}
	}
	return svc.AddProvidesPort(cca.GoPort(goFunc(dr.run)), "go", cca.GoPortType)
}

// goFunc adapts a function to cca.GoPort.
type goFunc func() error

func (g goFunc) Go() error { return g() }

func (dr *IgnitionDriver) port(name string) cca.Port {
	p, err := dr.svc.GetPort(name)
	if err != nil {
		panic(fmt.Sprintf("IgnitionDriver: %v", err))
	}
	dr.svc.ReleasePort(name)
	return p
}

func (dr *IgnitionDriver) run() error {
	tEnd := dr.svc.Parameters().GetFloat("tEnd", 1e-3)
	nOut := dr.svc.Parameters().GetInt("nOut", 50)
	if nOut < 1 {
		nOut = 1
	}
	icPort := dr.port("ic").(ICStatePort)
	integ := dr.port("integrator").(ImplicitIntegratorPort)
	chemPort := dr.port("chemistry").(ChemistryPort)
	stats := dr.port("stats").(StatsPort)

	T0, P0, Y0 := icPort.InitialState()
	n := chemPort.Mechanism().NumSpecies()
	y := make([]float64, n+2)
	y[0] = T0
	copy(y[1:1+n], Y0)
	y[1+n] = P0

	dr.Times = []float64{0}
	dr.Temps = []float64{T0}
	dr.Pressures = []float64{P0}
	stats.Record("T", T0)
	stats.Record("P", P0)

	tel := dr.svc.Telemetry()
	var prevT, prevTime float64 = T0, 0
	maxRate, tIgn := 0.0, 0.0
	t := 0.0
	dt := tEnd / float64(nOut)
	for k := 1; k <= nOut; k++ {
		tel.NoteStep(k)
		t1 := dt * float64(k)
		if _, err := integ.IntegrateTo(t, t1, y); err != nil {
			return fmt.Errorf("ignition driver at t=%v: %w", t, err)
		}
		t = t1
		dr.Times = append(dr.Times, t)
		dr.Temps = append(dr.Temps, y[0])
		dr.Pressures = append(dr.Pressures, y[1+n])
		stats.Record("T", y[0])
		stats.Record("P", y[1+n])
		if rate := (y[0] - prevT) / (t - prevTime); rate > maxRate {
			maxRate = rate
			tIgn = 0.5 * (t + prevTime)
		}
		prevT, prevTime = y[0], t
	}
	dr.IgnitionDelay = tIgn
	dr.FinalY = append([]float64(nil), y...)
	stats.Record("ignitionDelay", tIgn)
	return nil
}
