package components

import (
	"fmt"
	"os"
	"path/filepath"

	"ccahydro/internal/amr"
	"ccahydro/internal/cca"
	"ccahydro/internal/ckpt"
	"ccahydro/internal/field"
	"ccahydro/internal/mpi"
)

// CheckpointComponent provides the CheckpointPort: periodic durable
// snapshots of the complete simulation state and bit-exact restores.
// Parameters:
//
//	every    checkpoint cadence in driver steps (default 0 = off)
//	dir      checkpoint directory (default "checkpoints")
//	restore  manifest path or checkpoint directory to resume from
//	         (a directory means "the latest valid checkpoint in it")
//
// Save path: the driver hands over its phase position (step, time,
// counters, series); the component snapshots the mesh geometry and
// every registered field's raw patch arrays, serializes on the exec
// pool, and enqueues shard bytes on a background writer — the next
// step's compute overlaps the IO. Rank 0 then gathers every rank's
// shard digest and enqueues the manifest that makes the checkpoint
// durable (shards without a validating manifest are ignored on load).
//
// Restore path: each rank reads and CRC-verifies its own shard,
// validates geometry/driver/rank-count agreement, rebuilds the
// hierarchy and fields, adopts them into the mesh, and reinstates the
// virtual clock and comm stats. Field arrays are restored bit-for-bit
// including ghosts, so no exchange is needed before the first step.
type CheckpointComponent struct {
	svc     cca.Services
	every   int
	dir     string
	restore string
	writer  *ckpt.Writer
}

// checkpointMesh is the mesh surface the component needs: the standard
// MeshPort plus the restore/save extensions GrACEComponent implements.
type checkpointMesh interface {
	MeshPort
	FieldNames() []string
	AdoptAll(map[string]*field.DataObject) error
}

// SetServices implements cca.Component.
func (cc *CheckpointComponent) SetServices(svc cca.Services) error {
	cc.svc = svc
	p := svc.Parameters()
	cc.every = p.GetInt("every", 0)
	cc.dir = p.GetString("dir", "checkpoints")
	cc.restore = p.GetString("restore", "")
	cc.writer = ckpt.NewWriter(svc.Observability())
	if err := svc.RegisterUsesPort("mesh", MeshPortType); err != nil {
		return err
	}
	registerExecPort(svc)
	return svc.AddProvidesPort(cc, "checkpoint", CheckpointPortType)
}

func (cc *CheckpointComponent) mesh() (checkpointMesh, error) {
	p, err := cc.svc.GetPort("mesh")
	if err != nil {
		return nil, fmt.Errorf("checkpoint: mesh port: %w", err)
	}
	m, ok := p.(checkpointMesh)
	if !ok {
		return nil, fmt.Errorf("checkpoint: mesh provider %T lacks the restore surface", p)
	}
	return m, nil
}

func (cc *CheckpointComponent) comm() *mpi.Comm { return cc.svc.Comm() }

func (cc *CheckpointComponent) rankInfo() (rank, size int) {
	if c := cc.comm(); c != nil {
		return c.Rank(), c.Size()
	}
	return 0, 1
}

// SaveIfDue implements CheckpointPort. meta.Step is the 0-based step
// just completed; the checkpoint captures the state a continuation
// would compute step meta.Step+1 from.
func (cc *CheckpointComponent) SaveIfDue(meta ckpt.Meta) error {
	if cc.every <= 0 || (meta.Step+1)%cc.every != 0 {
		return nil
	}
	return cc.save(meta)
}

func (cc *CheckpointComponent) save(meta ckpt.Meta) error {
	o := cc.svc.Observability()
	if o != nil {
		defer o.Span("ckpt", fmt.Sprintf("save step %d", meta.Step))()
	}
	mesh, err := cc.mesh()
	if err != nil {
		return err
	}
	rank, size := cc.rankInfo()
	if c := cc.comm(); c != nil {
		s := c.Stats()
		meta.VirtualTime = c.VirtualTime()
		meta.Comm = s
	}
	shard := &ckpt.Shard{
		Rank:     rank,
		NumRanks: size,
		Snapshot: mesh.Hierarchy().Snapshot(),
		Meta:     meta,
	}
	for _, name := range mesh.FieldNames() {
		d := mesh.Field(name)
		fs := ckpt.FieldShard{
			Name:  name,
			NComp: d.NComp,
			Ghost: d.Ghost,
			Names: append([]string(nil), d.Names...),
		}
		d.ForEachLocal(func(pd *field.PatchData) {
			// RawData aliases live storage: EncodeShard below runs
			// synchronously on the driver goroutine, before the next
			// step mutates the field, so the copy is consistent.
			fs.Patches = append(fs.Patches, ckpt.PatchBlob{ID: pd.Patch.ID, Data: pd.RawData()})
		})
		shard.Fields = append(shard.Fields, fs)
	}
	data := ckpt.EncodeShard(shard, optionalPool(cc.svc))
	shardName := ckpt.ShardFileName(meta.Step, rank)
	cc.writer.Enqueue(filepath.Join(cc.dir, shardName), data)

	// Durability marker: rank 0 collects every shard's digest into the
	// manifest. The gather is synchronous (cheap: 2 words per rank); the
	// file writes stay asynchronous.
	sizeBytes, crc := ckpt.Digest(data)
	if c := cc.comm(); c != nil && size > 1 {
		digests := c.Gather(0, []float64{float64(sizeBytes), float64(crc)})
		if rank == 0 {
			m := &ckpt.Manifest{Step: meta.Step, NumRanks: size}
			for r, dg := range digests {
				m.Shards = append(m.Shards, ckpt.ManifestEntry{
					File: ckpt.ShardFileName(meta.Step, r),
					Size: uint64(dg[0]),
					CRC:  uint32(dg[1]),
				})
			}
			cc.writer.Enqueue(filepath.Join(cc.dir, ckpt.ManifestFileName(meta.Step)), ckpt.EncodeManifest(m))
		}
	} else {
		m := &ckpt.Manifest{Step: meta.Step, NumRanks: 1,
			Shards: []ckpt.ManifestEntry{{File: shardName, Size: sizeBytes, CRC: crc}}}
		cc.writer.Enqueue(filepath.Join(cc.dir, ckpt.ManifestFileName(meta.Step)), ckpt.EncodeManifest(m))
	}
	return nil
}

// Flush implements CheckpointPort.
func (cc *CheckpointComponent) Flush() error { return cc.writer.Flush() }

// Restore implements CheckpointPort. Returns (nil, nil) on a cold start.
func (cc *CheckpointComponent) Restore(driver string) (*ckpt.Meta, error) {
	if cc.restore == "" {
		return nil, nil
	}
	o := cc.svc.Observability()
	if o != nil {
		defer o.Span("ckpt", "restore")()
	}
	manifestPath := cc.restore
	if fi, err := os.Stat(manifestPath); err == nil && fi.IsDir() {
		p, _, ok := ckpt.LatestValid(manifestPath)
		if !ok {
			return nil, fmt.Errorf("checkpoint: no valid checkpoint in %s", manifestPath)
		}
		manifestPath = p
	}
	m, err := ckpt.ReadManifest(manifestPath)
	if err != nil {
		return nil, err
	}
	rank, size := cc.rankInfo()
	if m.NumRanks != size {
		return nil, fmt.Errorf("checkpoint: written by %d ranks, restoring on %d", m.NumRanks, size)
	}
	data, err := os.ReadFile(filepath.Join(filepath.Dir(manifestPath), m.Shards[rank].File))
	if err != nil {
		return nil, err
	}
	shard, err := ckpt.DecodeShard(data)
	if err != nil {
		return nil, err
	}
	if shard.Rank != rank || shard.NumRanks != size {
		return nil, fmt.Errorf("checkpoint: shard is rank %d/%d, expected %d/%d",
			shard.Rank, shard.NumRanks, rank, size)
	}
	if shard.Meta.Driver != driver {
		return nil, fmt.Errorf("checkpoint: written by driver %q, restoring into %q", shard.Meta.Driver, driver)
	}
	mesh, err := cc.mesh()
	if err != nil {
		return nil, err
	}
	h, err := amr.FromSnapshot(shard.Snapshot)
	if err != nil {
		return nil, err
	}
	if cur := mesh.Hierarchy(); cur != nil && !cur.Domain.Equal(h.Domain) {
		return nil, fmt.Errorf("checkpoint: domain %v does not match assembly domain %v", h.Domain, cur.Domain)
	}
	fields := make(map[string]*field.DataObject, len(shard.Fields))
	for i := range shard.Fields {
		fs := &shard.Fields[i]
		d := field.New(fs.Name, h, fs.NComp, fs.Ghost, cc.comm())
		d.Names = append([]string(nil), fs.Names...)
		d.SetObs(cc.svc.Observability())
		blobs := make(map[int][]float64, len(fs.Patches))
		for _, p := range fs.Patches {
			blobs[p.ID] = p.Data
		}
		restoreErr := error(nil)
		d.ForEachLocal(func(pd *field.PatchData) {
			blob, ok := blobs[pd.Patch.ID]
			if !ok {
				if restoreErr == nil {
					restoreErr = fmt.Errorf("checkpoint: field %q missing patch %d", fs.Name, pd.Patch.ID)
				}
				return
			}
			if err := pd.SetRawData(blob); err != nil && restoreErr == nil {
				restoreErr = err
			}
			delete(blobs, pd.Patch.ID)
		})
		if restoreErr != nil {
			return nil, restoreErr
		}
		if len(blobs) != 0 {
			return nil, fmt.Errorf("checkpoint: field %q has %d shard patches not owned by rank %d",
				fs.Name, len(blobs), rank)
		}
		fields[fs.Name] = d
	}
	if err := mesh.AdoptAll(fields); err != nil {
		return nil, err
	}
	if c := cc.comm(); c != nil {
		c.AdvanceVirtualTime(shard.Meta.VirtualTime)
		c.RestoreStats(shard.Meta.Comm)
	}
	meta := shard.Meta
	return &meta, nil
}
