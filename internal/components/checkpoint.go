package components

import (
	"fmt"
	"os"
	"path/filepath"

	"ccahydro/internal/amr"
	"ccahydro/internal/cca"
	"ccahydro/internal/ckpt"
	"ccahydro/internal/field"
	"ccahydro/internal/mpi"
	"ccahydro/internal/telemetry"
)

// CheckpointComponent provides the CheckpointPort: periodic durable
// snapshots of the complete simulation state and bit-exact restores.
// Parameters:
//
//	every       checkpoint cadence in driver steps (default 0 = off)
//	dir         checkpoint directory (default "checkpoints")
//	restore     manifest path or checkpoint directory to resume from
//	            (a directory means "the latest valid checkpoint in it")
//	incremental write delta shards holding only patches whose bytes
//	            changed since the previous checkpoint (default false)
//	fullEvery   force a full checkpoint after this many consecutive
//	            deltas (default 8; bounds restore chain length)
//	compress    gzip shard section payloads (default false)
//	keep        retention: keep the newest K checkpoints, GC the rest
//	            (default 0 = keep everything)
//	keepEvery   retention: additionally keep every N-th step (default 0)
//
// Save path: the driver hands over its phase position (step, time,
// counters, series); the component snapshots the mesh geometry and
// every registered field's raw patch arrays, serializes on the exec
// pool, and enqueues shard bytes on a background writer — the next
// step's compute overlaps the IO. Rank 0 then gathers every rank's
// shard digest and enqueues the manifest that makes the checkpoint
// durable (shards without a validating manifest are ignored on load),
// followed by the retention GC pass, which therefore only ever runs
// against fully landed checkpoints.
//
// Incremental saves: each rank fingerprints every local patch's raw
// bytes (all registered fields, FNV-1a 64). A patch is dirty when its
// fingerprint changed since the last checkpoint; a delta shard stores
// only dirty patches and names its parent checkpoint. The full-vs-delta
// decision is communication-free and identical on every rank: it reads
// only the replicated hierarchy (any layout change forces a full) and
// replicated counters. Restore materializes the chain base-to-target.
//
// Restore path: the manifest's whole delta chain is validated first
// (ckpt.ResolveChain). When the writing and restoring rank counts
// match, each rank materializes its own shard chain and restores
// bit-for-bit including ghosts — no exchange is needed before the first
// step. When they differ (elastic restart), every rank reads all shards
// of every link, reassembles the global hierarchy and field state, and
// re-partitions onto the current cohort through the mesh's own regrid
// policy — so the restored layout, per-cell data included, is exactly
// what a native run at the new rank count would be using.
type CheckpointComponent struct {
	svc         cca.Services
	every       int
	fullEvery   int
	incremental bool
	compress    bool
	keep        ckpt.RetentionPolicy
	dir         string
	restore     string
	writer      *ckpt.Writer
	preempt     *ckpt.Gate

	// Incremental-save state. lastStep/lastHier are replicated across
	// ranks (driven by replicated inputs); lastID is only maintained
	// where manifests are written (rank 0).
	lastStep        int
	lastID          string
	lastHier        uint64
	deltasSinceFull int
	prints          map[patchKey]uint64
}

// patchKey identifies a patch for dirty tracking. Patch IDs are reused
// across regrids, so the geometry is part of the identity.
type patchKey struct {
	id, level int
	box       amr.Box
}

// checkpointMesh is the mesh surface the component needs: the standard
// MeshPort plus the restore/save extensions GrACEComponent implements.
type checkpointMesh interface {
	MeshPort
	FieldNames() []string
	AdoptAll(map[string]*field.DataObject) error
	RegridPolicy() (amr.LoadBalancer, amr.Workload)
}

// SetServices implements cca.Component.
func (cc *CheckpointComponent) SetServices(svc cca.Services) error {
	cc.svc = svc
	p := svc.Parameters()
	cc.every = p.GetInt("every", 0)
	cc.dir = p.GetString("dir", "checkpoints")
	cc.restore = p.GetString("restore", "")
	cc.incremental = p.GetBool("incremental", false)
	cc.fullEvery = p.GetInt("fullEvery", 8)
	if cc.fullEvery < 1 {
		cc.fullEvery = 1
	}
	cc.compress = p.GetBool("compress", false)
	cc.keep = ckpt.RetentionPolicy{KeepLast: p.GetInt("keep", 0), KeepEvery: p.GetInt("keepEvery", 0)}
	cc.writer = ckpt.NewWriter(svc.Observability())
	cc.lastStep = -1
	if err := svc.RegisterUsesPort("mesh", MeshPortType); err != nil {
		return err
	}
	registerExecPort(svc)
	return svc.AddProvidesPort(cc, "checkpoint", CheckpointPortType)
}

func (cc *CheckpointComponent) mesh() (checkpointMesh, error) {
	p, err := cc.svc.GetPort("mesh")
	if err != nil {
		return nil, fmt.Errorf("checkpoint: mesh port: %w", err)
	}
	m, ok := p.(checkpointMesh)
	if !ok {
		return nil, fmt.Errorf("checkpoint: mesh provider %T lacks the restore surface", p)
	}
	return m, nil
}

func (cc *CheckpointComponent) comm() *mpi.Comm { return cc.svc.Comm() }

func (cc *CheckpointComponent) rankInfo() (rank, size int) {
	if c := cc.comm(); c != nil {
		return c.Rank(), c.Size()
	}
	return 0, 1
}

// hierarchyKey hashes the replicated patch layout (IDs, levels, boxes,
// owners). Any difference from the previous checkpoint's key forces a
// full save: delta shards only make sense against an identical layout.
func hierarchyKey(h *amr.Hierarchy) uint64 {
	const prime = 1099511628211
	k := field.FingerprintSeed
	mix := func(v int) {
		u := uint64(v)
		for s := uint(0); s < 64; s += 8 {
			k ^= (u >> s) & 0xff
			k *= prime
		}
	}
	s := h.Snapshot()
	mix(len(s.Patches))
	for _, p := range s.Patches {
		mix(p.ID)
		mix(p.Level)
		mix(p.Box.Lo[0])
		mix(p.Box.Lo[1])
		mix(p.Box.Hi[0])
		mix(p.Box.Hi[1])
		mix(p.Owner)
	}
	return k
}

// fingerprints hashes every local patch's raw bytes across all
// registered fields (in sorted field order, chained per patch).
func (cc *CheckpointComponent) fingerprints(mesh checkpointMesh) map[patchKey]uint64 {
	prints := map[patchKey]uint64{}
	for _, name := range mesh.FieldNames() {
		mesh.Field(name).ForEachLocal(func(pd *field.PatchData) {
			k := patchKey{id: pd.Patch.ID, level: pd.Patch.Level, box: pd.Patch.Box}
			h, ok := prints[k]
			if !ok {
				h = field.FingerprintSeed
			}
			prints[k] = pd.Fingerprint(h)
		})
	}
	return prints
}

// SetPreempt installs a scheduler's preemption gate. It cannot be a
// string parameter, so run servers set it programmatically (through
// core.CheckpointOptions) after instantiation, before Go.
func (cc *CheckpointComponent) SetPreempt(g *ckpt.Gate) { cc.preempt = g }

// preemptRequested turns the gate's asynchronous flag into a collective
// decision: rank 0's reading is broadcast, so every rank of the cohort
// agrees on the exact step the job stops at (ranks race the flag flip
// individually — one rank proceeding to step s+1 while another saves
// and unwinds at s would wedge the save's gather).
func (cc *CheckpointComponent) preemptRequested() bool {
	if cc.preempt == nil {
		return false
	}
	c := cc.comm()
	if c == nil || c.Size() == 1 {
		return cc.preempt.Requested()
	}
	v := 0.0
	if c.Rank() == 0 && cc.preempt.Requested() {
		v = 1
	}
	return c.Bcast(0, []float64{v})[0] != 0
}

// SaveIfDue implements CheckpointPort. meta.Step is the 0-based step
// just completed; the checkpoint captures the state a continuation
// would compute step meta.Step+1 from.
//
// When a preemption gate is armed, the cadence is overridden: the
// component forces a full-fidelity save at this step boundary, drains
// the async writer so the manifest is durable before anyone can look
// for it, and unwinds the run with ckpt.ErrPreempted. The scheduler
// that armed the gate resumes the job later from ckpt.LatestValid —
// elastically, if the new cohort has a different rank count.
func (cc *CheckpointComponent) SaveIfDue(meta ckpt.Meta) error {
	if cc.preemptRequested() {
		if err := cc.save(meta); err != nil {
			return err
		}
		if err := cc.writer.Flush(); err != nil {
			return err
		}
		return fmt.Errorf("checkpoint: stopped at step %d: %w", meta.Step, ckpt.ErrPreempted)
	}
	if cc.every <= 0 || (meta.Step+1)%cc.every != 0 {
		return nil
	}
	return cc.save(meta)
}

func (cc *CheckpointComponent) save(meta ckpt.Meta) error {
	o := cc.svc.Observability()
	if o != nil {
		defer o.Span("ckpt", fmt.Sprintf("save step %d", meta.Step))()
	}
	mesh, err := cc.mesh()
	if err != nil {
		return err
	}
	rank, size := cc.rankInfo()
	if c := cc.comm(); c != nil {
		s := c.Stats()
		meta.VirtualTime = c.VirtualTime()
		meta.Comm = s
	}

	// Full or delta? The inputs are replicated, so every rank decides
	// identically with no communication.
	hk := hierarchyKey(mesh.Hierarchy())
	var prints map[patchKey]uint64
	if cc.incremental {
		prints = cc.fingerprints(mesh)
	}
	kind := ckpt.ShardFull
	if cc.incremental && cc.lastStep >= 0 && hk == cc.lastHier && cc.deltasSinceFull < cc.fullEvery {
		kind = ckpt.ShardDelta
	}

	shard := &ckpt.Shard{
		Rank:       rank,
		NumRanks:   size,
		Kind:       kind,
		ParentStep: -1,
		Snapshot:   mesh.Hierarchy().Snapshot(),
		Meta:       meta,
	}
	if kind == ckpt.ShardDelta {
		shard.ParentStep = cc.lastStep
	}
	for _, name := range mesh.FieldNames() {
		d := mesh.Field(name)
		fs := ckpt.FieldShard{
			Name:  name,
			NComp: d.NComp,
			Ghost: d.Ghost,
			Names: append([]string(nil), d.Names...),
		}
		d.ForEachLocal(func(pd *field.PatchData) {
			if kind == ckpt.ShardDelta {
				k := patchKey{id: pd.Patch.ID, level: pd.Patch.Level, box: pd.Patch.Box}
				if prev, ok := cc.prints[k]; ok && prev == prints[k] {
					return // clean: the parent chain already holds these bytes
				}
			}
			// RawData aliases live storage: EncodeShardOpts below runs
			// synchronously on the driver goroutine, before the next
			// step mutates the field, so the copy is consistent.
			fs.Patches = append(fs.Patches, ckpt.PatchBlob{ID: pd.Patch.ID, Data: pd.RawData()})
		})
		shard.Fields = append(shard.Fields, fs)
	}
	data := ckpt.EncodeShardOpts(shard, optionalPool(cc.svc), cc.compress)
	shardName := ckpt.ShardFileName(meta.Step, rank)
	cc.writer.Enqueue(filepath.Join(cc.dir, shardName), data)

	// Durability marker: rank 0 collects every shard's digest into the
	// manifest. The gather is synchronous (cheap: 2 words per rank); the
	// file writes stay asynchronous.
	newManifest := func(entries []ckpt.ManifestEntry) *ckpt.Manifest {
		m := &ckpt.Manifest{Step: meta.Step, NumRanks: size, Kind: kind, ParentStep: -1, Shards: entries}
		if kind == ckpt.ShardDelta {
			m.ParentStep = cc.lastStep
			m.ParentID = cc.lastID
		}
		m.ID = ckpt.ManifestID(m)
		return m
	}
	sizeBytes, crc := ckpt.Digest(data)
	var m *ckpt.Manifest
	if c := cc.comm(); c != nil && size > 1 {
		digests := c.Gather(0, []float64{float64(sizeBytes), float64(crc)})
		if rank == 0 {
			var entries []ckpt.ManifestEntry
			for r, dg := range digests {
				entries = append(entries, ckpt.ManifestEntry{
					File: ckpt.ShardFileName(meta.Step, r),
					Size: uint64(dg[0]),
					CRC:  uint32(dg[1]),
				})
			}
			m = newManifest(entries)
		}
	} else {
		m = newManifest([]ckpt.ManifestEntry{{File: shardName, Size: sizeBytes, CRC: crc}})
	}
	if m != nil {
		cc.writer.Enqueue(filepath.Join(cc.dir, ckpt.ManifestFileName(meta.Step)), ckpt.EncodeManifest(m))
		cc.lastID = m.ID
		// Retention rides the writer FIFO: by the time GC runs, this
		// step's shards and manifest are all durable, so the pass only
		// ever judges complete checkpoints.
		if cc.keep.Enabled() {
			dir, pol := cc.dir, cc.keep
			tel, step := cc.svc.Telemetry(), meta.Step
			cc.writer.EnqueueFunc(func() error {
				if err := ckpt.GC(dir, pol); err != nil {
					return err
				}
				tel.Emit(telemetry.EvCkptGC, step, "")
				return nil
			})
		}
	}
	if kind == ckpt.ShardDelta {
		cc.svc.Telemetry().Emit(telemetry.EvCkptSave, meta.Step, "delta")
	} else {
		cc.svc.Telemetry().Emit(telemetry.EvCkptSave, meta.Step, "full")
	}

	cc.lastStep = meta.Step
	cc.lastHier = hk
	if kind == ckpt.ShardFull {
		cc.deltasSinceFull = 0
	} else {
		cc.deltasSinceFull++
	}
	if cc.incremental {
		cc.prints = prints
	}
	return nil
}

// Flush implements CheckpointPort.
func (cc *CheckpointComponent) Flush() error { return cc.writer.Flush() }

// fieldState is one field's fully materialized global (or per-rank)
// state after overlaying a delta chain onto its base.
type fieldState struct {
	spec  ckpt.FieldShard // Name/NComp/Ghost/Names; Patches unused
	blobs map[int][]float64
}

// loadChainState reads the given ranks' shards of every chain link
// (base first) and materializes field state: base blobs overlaid with
// each delta's dirty patches. Returns the field states in base field
// order, the target-link Meta per requested rank, and the target-link
// hierarchy snapshot.
func loadChainState(dir string, chain []ckpt.ChainLink, ranks []int) ([]*fieldState, []ckpt.Meta, amr.Snapshot, error) {
	var (
		states []*fieldState
		byName = map[string]*fieldState{}
		metas  = make([]ckpt.Meta, len(ranks))
		snap   amr.Snapshot
	)
	for li, link := range chain {
		m := link.Manifest
		for ri, r := range ranks {
			data, err := os.ReadFile(filepath.Join(dir, m.Shards[r].File))
			if err != nil {
				return nil, nil, snap, err
			}
			shard, err := ckpt.DecodeShard(data)
			if err != nil {
				return nil, nil, snap, fmt.Errorf("%s: %w", m.Shards[r].File, err)
			}
			if shard.Rank != r || shard.NumRanks != m.NumRanks {
				return nil, nil, snap, fmt.Errorf("checkpoint: shard %s is rank %d/%d, expected %d/%d",
					m.Shards[r].File, shard.Rank, shard.NumRanks, r, m.NumRanks)
			}
			if shard.Kind != m.Kind || shard.ParentStep != m.ParentStep {
				return nil, nil, snap, fmt.Errorf("checkpoint: shard %s kind %v/parent %d disagrees with manifest %v/%d",
					m.Shards[r].File, shard.Kind, shard.ParentStep, m.Kind, m.ParentStep)
			}
			if li == len(chain)-1 {
				metas[ri] = shard.Meta
				if ri == 0 {
					snap = shard.Snapshot
				}
			}
			for i := range shard.Fields {
				fs := &shard.Fields[i]
				st := byName[fs.Name]
				if st == nil {
					if li > 0 {
						return nil, nil, snap, fmt.Errorf("checkpoint: delta step %d introduces field %q absent from its base", m.Step, fs.Name)
					}
					st = &fieldState{
						spec: ckpt.FieldShard{Name: fs.Name, NComp: fs.NComp, Ghost: fs.Ghost,
							Names: append([]string(nil), fs.Names...)},
						blobs: map[int][]float64{},
					}
					byName[fs.Name] = st
					states = append(states, st)
				}
				if fs.NComp != st.spec.NComp || fs.Ghost != st.spec.Ghost {
					return nil, nil, snap, fmt.Errorf("checkpoint: field %q changes shape along the chain", fs.Name)
				}
				for _, p := range fs.Patches {
					if li > 0 {
						if _, ok := st.blobs[p.ID]; !ok {
							return nil, nil, snap, fmt.Errorf("checkpoint: delta step %d patch %d of field %q has no base data",
								m.Step, p.ID, fs.Name)
						}
					}
					st.blobs[p.ID] = p.Data
				}
			}
		}
	}
	return states, metas, snap, nil
}

// Restore implements CheckpointPort. Returns (nil, nil) on a cold start.
func (cc *CheckpointComponent) Restore(driver string) (*ckpt.Meta, error) {
	if cc.restore == "" {
		return nil, nil
	}
	o := cc.svc.Observability()
	if o != nil {
		defer o.Span("ckpt", "restore")()
	}
	manifestPath := cc.restore
	if fi, err := os.Stat(manifestPath); err == nil && fi.IsDir() {
		p, _, ok := ckpt.LatestValid(manifestPath)
		if !ok {
			return nil, fmt.Errorf("checkpoint: no valid checkpoint in %s", manifestPath)
		}
		manifestPath = p
	}
	chain, err := ckpt.ResolveChain(manifestPath)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(manifestPath)
	pOld := chain[len(chain)-1].Manifest.NumRanks
	rank, size := cc.rankInfo()
	mesh, err := cc.mesh()
	if err != nil {
		return nil, err
	}
	var meta *ckpt.Meta
	if pOld == size {
		meta, err = cc.restoreExact(mesh, dir, chain, driver, rank, size)
	} else {
		meta, err = cc.restoreElastic(mesh, dir, chain, driver, rank, size, pOld)
	}
	if err != nil {
		return nil, err
	}
	cc.svc.Telemetry().Emit(telemetry.EvCkptRestore, meta.Step, filepath.Base(manifestPath))
	return meta, nil
}

// restoreExact is the matching-rank-count path: each rank materializes
// its own shard chain and restores its exact saved state — hierarchy,
// per-rank meta, and every local array bit-for-bit including ghosts.
func (cc *CheckpointComponent) restoreExact(mesh checkpointMesh, dir string, chain []ckpt.ChainLink, driver string, rank, size int) (*ckpt.Meta, error) {
	states, metas, snap, err := loadChainState(dir, chain, []int{rank})
	if err != nil {
		return nil, err
	}
	meta := metas[0]
	if meta.Driver != driver {
		return nil, fmt.Errorf("checkpoint: written by driver %q, restoring into %q", meta.Driver, driver)
	}
	h, err := amr.FromSnapshot(snap)
	if err != nil {
		return nil, err
	}
	if cur := mesh.Hierarchy(); cur != nil && !cur.Domain.Equal(h.Domain) {
		return nil, fmt.Errorf("checkpoint: domain %v does not match assembly domain %v", h.Domain, cur.Domain)
	}
	fields := make(map[string]*field.DataObject, len(states))
	for _, st := range states {
		d := field.New(st.spec.Name, h, st.spec.NComp, st.spec.Ghost, cc.comm())
		d.Names = append([]string(nil), st.spec.Names...)
		d.SetObs(cc.svc.Observability())
		remaining := len(st.blobs)
		restoreErr := error(nil)
		d.ForEachLocal(func(pd *field.PatchData) {
			blob, ok := st.blobs[pd.Patch.ID]
			if !ok {
				if restoreErr == nil {
					restoreErr = fmt.Errorf("checkpoint: field %q missing patch %d", st.spec.Name, pd.Patch.ID)
				}
				return
			}
			if err := pd.SetRawData(blob); err != nil && restoreErr == nil {
				restoreErr = err
			}
			remaining--
		})
		if restoreErr != nil {
			return nil, restoreErr
		}
		if remaining != 0 {
			return nil, fmt.Errorf("checkpoint: field %q has %d shard patches not owned by rank %d",
				st.spec.Name, remaining, rank)
		}
		fields[st.spec.Name] = d
	}
	if err := mesh.AdoptAll(fields); err != nil {
		return nil, err
	}
	if c := cc.comm(); c != nil {
		c.AdvanceVirtualTime(meta.VirtualTime)
		c.RestoreStats(meta.Comm)
	}
	return &meta, nil
}

// restoreElastic is the rank-count-changing path. Every rank reads all
// P_old shards of the chain, reassembles the global state, and installs
// it onto a hierarchy re-partitioned for the current cohort:
//
//   - refined levels keep their (P-invariant) boxes, so each new local
//     patch adopts the matching saved array verbatim;
//   - level 0 is re-decomposed, so saved level-0 arrays are stitched by
//     region — ghost-included overlaps first for plausible ghost fill,
//     then saved interiors, which are authoritative, on top. Every
//     interior cell comes from a saved interior cell; a coverage check
//     proves none was invented.
//
// Ghost cells that end up merely plausible cannot leak into the run:
// every consumer refreshes ghosts before reading them, so continuation
// stays bit-for-bit with an uninterrupted run at the new rank count.
func (cc *CheckpointComponent) restoreElastic(mesh checkpointMesh, dir string, chain []ckpt.ChainLink, driver string, rank, size, pOld int) (*ckpt.Meta, error) {
	ranks := make([]int, pOld)
	for i := range ranks {
		ranks[i] = i
	}
	states, metas, snap, err := loadChainState(dir, chain, ranks)
	if err != nil {
		return nil, err
	}
	if metas[0].Driver != driver {
		return nil, fmt.Errorf("checkpoint: written by driver %q, restoring into %q", metas[0].Driver, driver)
	}
	bal, work := mesh.RegridPolicy()
	h, err := amr.Repartition(snap, size, bal, work)
	if err != nil {
		return nil, err
	}
	if cur := mesh.Hierarchy(); cur != nil && !cur.Domain.Equal(h.Domain) {
		return nil, fmt.Errorf("checkpoint: domain %v does not match assembly domain %v", h.Domain, cur.Domain)
	}

	type levelBox struct {
		level int
		box   amr.Box
	}
	byGeom := make(map[levelBox]int, len(snap.Patches)) // saved geometry -> patch ID
	var level0 []amr.PatchSnapshot                      // saved level-0 patches, stored order
	for _, p := range snap.Patches {
		byGeom[levelBox{p.Level, p.Box}] = p.ID
		if p.Level == 0 {
			level0 = append(level0, p)
		}
	}

	fields := make(map[string]*field.DataObject, len(states))
	for _, st := range states {
		d := field.New(st.spec.Name, h, st.spec.NComp, st.spec.Ghost, cc.comm())
		d.Names = append([]string(nil), st.spec.Names...)
		d.SetObs(cc.svc.Observability())
		// Saved level-0 arrays wrapped as patch data for region copies.
		var srcs []*field.PatchData
		for _, p := range level0 {
			blob, ok := st.blobs[p.ID]
			if !ok {
				return nil, fmt.Errorf("checkpoint: field %q has no data for saved patch %d", st.spec.Name, p.ID)
			}
			src := field.NewPatchData(&amr.Patch{ID: p.ID, Level: 0, Box: p.Box}, st.spec.NComp, st.spec.Ghost)
			if err := src.SetRawData(blob); err != nil {
				return nil, err
			}
			srcs = append(srcs, src)
		}
		restoreErr := error(nil)
		d.ForEachLocal(func(pd *field.PatchData) {
			if restoreErr != nil {
				return
			}
			if pd.Patch.Level > 0 {
				id, ok := byGeom[levelBox{pd.Patch.Level, pd.Patch.Box}]
				if !ok {
					restoreErr = fmt.Errorf("checkpoint: field %q has no saved patch at level %d box %v",
						st.spec.Name, pd.Patch.Level, pd.Patch.Box)
					return
				}
				blob, ok := st.blobs[id]
				if !ok {
					restoreErr = fmt.Errorf("checkpoint: field %q has no data for saved patch %d", st.spec.Name, id)
					return
				}
				if err := pd.SetRawData(blob); err != nil {
					restoreErr = err
				}
				return
			}
			// Level 0: stitch by region. Pass 1 copies ghost-included
			// overlaps (fills out-of-domain ghost strips from saved BC
			// fills); pass 2 lays saved interiors on top.
			for _, src := range srcs {
				pd.CopyRegion(src, src.Patch.Box.Grow(st.spec.Ghost))
			}
			remaining := []amr.Box{pd.Patch.Box}
			for _, src := range srcs {
				pd.CopyRegion(src, src.Patch.Box)
				var next []amr.Box
				for _, r := range remaining {
					next = append(next, r.Subtract(src.Patch.Box)...)
				}
				remaining = next
			}
			if len(remaining) != 0 {
				restoreErr = fmt.Errorf("checkpoint: field %q interior %v not covered by saved level 0 (missing %v)",
					st.spec.Name, pd.Patch.Box, remaining)
			}
		})
		if restoreErr != nil {
			return nil, restoreErr
		}
		fields[st.spec.Name] = d
	}
	if err := mesh.AdoptAll(fields); err != nil {
		return nil, err
	}

	// Meta merge: the phase position (step, time, series) is replicated
	// state — take it from shard 0. Per-rank counters cannot be split
	// across a different cohort, so their totals land on rank 0. Comm
	// stats follow each surviving rank; ranks beyond P_old start clean.
	meta := metas[0]
	vt := 0.0
	counters := map[string]float64{}
	for _, m := range metas {
		if m.VirtualTime > vt {
			vt = m.VirtualTime
		}
		for k, v := range m.Counters {
			counters[k] += v
		}
	}
	meta.VirtualTime = vt
	if rank == 0 {
		meta.Counters = counters
	} else {
		meta.Counters = map[string]float64{}
	}
	if rank < pOld {
		meta.Comm = metas[rank].Comm
	} else {
		meta.Comm = mpi.CommStats{}
	}
	if c := cc.comm(); c != nil {
		c.AdvanceVirtualTime(meta.VirtualTime)
		c.RestoreStats(meta.Comm)
	}
	return &meta, nil
}
