package components

import (
	"fmt"

	"ccahydro/internal/cca"
	"ccahydro/internal/field"
)

// ExplicitIntegratorRK2 is the two-stage Runge–Kutta (Heun) time
// integrator of the shock assembly (paper Sec. 4.3). Boundary
// conditions are re-applied at each stage — the reason the paper makes
// BC granularity a patch, not a Data Object. The right-hand side comes
// through the "patchRHS" port (the InviscidFlux adaptor).
type ExplicitIntegratorRK2 struct {
	svc cca.Services
	// cache keeps the per-level rhs/save scratch patches alive between
	// steps; invalidated by patch-identity comparison after regrids.
	cache map[int]*rk2LevelCache
}

// rk2LevelCache is one level's reusable stage scratch.
type rk2LevelCache struct {
	patches []*field.PatchData
	rhs     []*field.PatchData
	save    []*field.PatchData
	strips  stripPlan
}

// SetServices implements cca.Component.
func (rk *ExplicitIntegratorRK2) SetServices(svc cca.Services) error {
	rk.svc = svc
	for _, u := range [][2]string{
		{"patchRHS", PatchRHSPortType},
		{"bc", BCPortType},
	} {
		if err := svc.RegisterUsesPort(u[0], u[1]); err != nil {
			return err
		}
	}
	if err := registerExecPort(svc); err != nil {
		return err
	}
	return svc.AddProvidesPort(rk, "integrator", ExplicitIntegratorType)
}

func (rk *ExplicitIntegratorRK2) ports() (PatchRHSPort, BCPort) {
	rp, err := rk.svc.GetPort("patchRHS")
	if err != nil {
		panic(fmt.Sprintf("ExplicitIntegratorRK2: %v", err))
	}
	rk.svc.ReleasePort("patchRHS")
	bp, err := rk.svc.GetPort("bc")
	if err != nil {
		panic(fmt.Sprintf("ExplicitIntegratorRK2: %v", err))
	}
	rk.svc.ReleasePort("bc")
	return rp.(PatchRHSPort), bp.(BCPort)
}

// fillGhosts runs the full ghost protocol for one level with the
// problem-specific BC component (not GrACE's default).
func (rk *ExplicitIntegratorRK2) fillGhosts(mesh MeshPort, bc BCPort, name string, level int) {
	d := mesh.Field(name)
	if level > 0 {
		bc.Apply(name, level-1)
		d.FillCoarseFineGhosts(level, field.ProlongLinear)
	}
	d.ExchangeGhosts(level)
	bc.Apply(name, level)
}

// AdvanceLevel implements ExplicitIntegratorPort: one Heun step of size
// t1-t0 over the level (the caller supplies a CFL-stable interval).
// The ghost protocol between stages is collective and stays serial;
// each stage's per-patch flux evaluations and conservative updates are
// independent (own ghost-padded read array, own interior writes) and
// fan out over the execution pool.
func (rk *ExplicitIntegratorRK2) AdvanceLevel(mesh MeshPort, name string, level int, t0, t1 float64) error {
	if o := rk.svc.Observability(); o != nil {
		defer o.Span("hydro", obsLevelName("rk2.advance", level))()
	}
	rhsPort, bc := rk.ports()
	d := mesh.Field(name)
	dx, dy := mesh.Spacing(level)
	dt := t1 - t0
	patches := d.LocalPatches(level)
	pool := optionalPool(rk.svc)

	if rk.cache == nil {
		rk.cache = make(map[int]*rk2LevelCache)
	}
	lc := rk.cache[level]
	if lc == nil || !samePatches(lc.patches, patches) {
		lc = &rk2LevelCache{
			patches: patches,
			rhs:     make([]*field.PatchData, len(patches)),
			save:    make([]*field.PatchData, len(patches)),
		}
		for i, pd := range patches {
			lc.rhs[i] = field.NewPatchData(pd.Patch, d.NComp, d.Ghost)
			lc.save[i] = field.NewPatchData(pd.Patch, d.NComp, d.Ghost)
		}
		rk.cache[level] = lc
	}
	rhs, save := lc.rhs, lc.save
	pool.ForEach(len(patches), func(_, i int) {
		save[i].CopyRegion(patches[i], patches[i].GrownBox())
	})

	// The flux evaluation of each stage overlaps the seam exchange with
	// interior compute (evalLevelOverlapped): coarse-level fills precede
	// the exchange, the level's physical BCs follow its completion.
	preExchange := func() {
		if level > 0 {
			bc.Apply(name, level-1)
			d.FillCoarseFineGhosts(level, field.ProlongLinear)
		}
	}
	applyBC := func() { bc.Apply(name, level) }

	// Stage 1: U1 = U + dt L(U).
	evalLevelOverlapped(d, level, patches, rhs, dx, dy, pool, rhsPort,
		&lc.strips, preExchange, applyBC)
	pool.ForEach(len(patches), func(_, i int) {
		pd := patches[i]
		b := pd.Interior()
		for k := 0; k < d.NComp; k++ {
			for j := b.Lo[1]; j <= b.Hi[1]; j++ {
				for ii := b.Lo[0]; ii <= b.Hi[0]; ii++ {
					pd.Set(k, ii, j, pd.At(k, ii, j)+dt*rhs[i].At(k, ii, j))
				}
			}
		}
	})

	// Stage 2: U^{n+1} = (U + U1 + dt L(U1)) / 2.
	evalLevelOverlapped(d, level, patches, rhs, dx, dy, pool, rhsPort,
		&lc.strips, preExchange, applyBC)
	pool.ForEach(len(patches), func(_, i int) {
		pd := patches[i]
		b := pd.Interior()
		for k := 0; k < d.NComp; k++ {
			for j := b.Lo[1]; j <= b.Hi[1]; j++ {
				for ii := b.Lo[0]; ii <= b.Hi[0]; ii++ {
					un := 0.5*save[i].At(k, ii, j) +
						0.5*(pd.At(k, ii, j)+dt*rhs[i].At(k, ii, j))
					pd.Set(k, ii, j, un)
				}
			}
		}
	})
	rk.fillGhosts(mesh, bc, name, level)
	return nil
}
