package components

import (
	"fmt"
	"sync"

	"ccahydro/internal/cca"
	"ccahydro/internal/chem"
	"ccahydro/internal/cvode"

	// Generated chemistry kernels register themselves on import, so
	// every assembly built from this package resolves them by default.
	_ "ccahydro/internal/chem/kernels"
)

// ThermoChemistry embodies the chemical interactions: it provides the
// source terms for temperature and species due to chemistry, and also
// serves as the Database subsystem holding gas properties (the paper
// wraps pre-existing F77 chemistry the same way). The mechanism is
// selected by the "mech" parameter ("h2air" or "h2air-lite").
//
// The "kernels" parameter picks the evaluation engine: "auto" (the
// default) uses the chemgen-generated kernel when one is registered
// for the mechanism and falls back to the interpreted Reaction-table
// walk otherwise, "on" requires a kernel, "off" forces interpretation.
// Both engines agree to rounding accuracy (the kernels package property
// tests pin this), so the switch changes cost, not answers.
//
// Source evaluations draw workspaces from a sync.Pool, so the port is
// safe to call from many worker goroutines at once (parallel per-cell
// chemistry hammers it); generated kernels are stateless and need no
// workspace at all. Only the property database needs the mutex.
type ThermoChemistry struct {
	mech   *chem.Mechanism
	kernel chem.Kernel // nil = interpreted path
	ws     sync.Pool   // of *chem.SourceWorkspace
	db     map[string]float64
	mu     sync.Mutex
}

// SetServices implements cca.Component.
func (tc *ThermoChemistry) SetServices(svc cca.Services) error {
	name := svc.Parameters().GetString("mech", "h2air")
	m, err := chem.ByName(name)
	if err != nil {
		return err
	}
	tc.mech = m
	switch mode := svc.Parameters().GetString("kernels", "auto"); mode {
	case "auto":
		tc.kernel = chem.KernelFor(m.Name)
	case "on":
		if tc.kernel = chem.KernelFor(m.Name); tc.kernel == nil {
			return fmt.Errorf("thermochem: kernels=on but no generated kernel for %q", m.Name)
		}
	case "off":
		tc.kernel = nil
	default:
		return fmt.Errorf("thermochem: unknown kernels mode %q (want auto, on or off)", mode)
	}
	tc.ws.New = func() any { return chem.NewSourceWorkspace(m) }
	tc.db = make(map[string]float64)
	// Populate the property database: molar masses and counts.
	tc.db["nspecies"] = float64(m.NumSpecies())
	tc.db["nreactions"] = float64(m.NumReactions())
	for i, sp := range m.Species {
		tc.db[fmt.Sprintf("W_%s", sp.Name)] = sp.W
		tc.db[fmt.Sprintf("index_%s", sp.Name)] = float64(i)
	}
	if err := svc.AddProvidesPort(tc, "chemistry", ChemistryPortType); err != nil {
		return err
	}
	return svc.AddProvidesPort(keyValueView{tc}, "properties", KeyValuePortType)
}

// Mechanism implements ChemistryPort.
func (tc *ThermoChemistry) Mechanism() *chem.Mechanism { return tc.mech }

// Kernel implements ChemistryPort.
func (tc *ThermoChemistry) Kernel() chem.Kernel { return tc.kernel }

// ConstPressure implements ChemistryPort. Safe for concurrent callers.
func (tc *ThermoChemistry) ConstPressure(T, P float64, Y, dY []float64) float64 {
	if tc.kernel != nil {
		return tc.kernel.ConstPressureSource(T, P, Y, dY)
	}
	ws := tc.ws.Get().(*chem.SourceWorkspace)
	dT := tc.mech.ConstPressureSource(T, P, Y, dY, ws)
	tc.ws.Put(ws)
	return dT
}

// ConstVolume implements ChemistryPort. Safe for concurrent callers.
func (tc *ThermoChemistry) ConstVolume(T, rho float64, Y, dY []float64) float64 {
	if tc.kernel != nil {
		return tc.kernel.ConstVolumeSource(T, rho, Y, dY)
	}
	ws := tc.ws.Get().(*chem.SourceWorkspace)
	dT := tc.mech.ConstVolumeSource(T, rho, Y, dY, ws)
	tc.ws.Put(ws)
	return dT
}

// keyValueView adapts the property map to KeyValuePort.
type keyValueView struct{ tc *ThermoChemistry }

func (v keyValueView) SetValue(key string, val float64) {
	v.tc.mu.Lock()
	v.tc.db[key] = val
	v.tc.mu.Unlock()
}

func (v keyValueView) Value(key string) (float64, bool) {
	v.tc.mu.Lock()
	defer v.tc.mu.Unlock()
	val, ok := v.tc.db[key]
	return val, ok
}

// DPDt is the paper's dPdt component: it computes the pressure term
// for the rigid-wall (constant mass and volume) boundary condition of
// the 0D ignition problem.
type DPDt struct {
	svc  cca.Services
	chem ChemistryPort
}

// SetServices implements cca.Component.
func (d *DPDt) SetServices(svc cca.Services) error {
	d.svc = svc
	if err := svc.RegisterUsesPort("chemistry", ChemistryPortType); err != nil {
		return err
	}
	return svc.AddProvidesPort(d, "dpdt", DPDtPortType)
}

// DPDt implements DPDtPort.
func (d *DPDt) DPDt(rho, T, dTdt float64, Y, dYdt []float64) float64 {
	if d.chem == nil {
		p, err := d.svc.GetPort("chemistry")
		if err != nil {
			panic(err) // wiring bug: assembly must connect chemistry first
		}
		d.chem = p.(ChemistryPort)
	}
	return d.chem.Mechanism().DPDt(rho, T, dTdt, Y, dYdt)
}

// ProblemModeler is the 0D adaptor between the integrator and the
// chemistry: it assembles the RHS over the state vector
// Phi = {T, Y_1..Y_N, P}, adding the pressure term supplied by the
// dPdt component to the heat equation (rigid walls: constant mass and
// volume).
type ProblemModeler struct {
	svc  cca.Services
	dY   []float64
	chem ChemistryPort
	dpdt DPDtPort
}

// SetServices implements cca.Component.
func (pm *ProblemModeler) SetServices(svc cca.Services) error {
	pm.svc = svc
	if err := svc.RegisterUsesPort("chemistry", ChemistryPortType); err != nil {
		return err
	}
	if err := svc.RegisterUsesPort("dpdt", DPDtPortType); err != nil {
		return err
	}
	return svc.AddProvidesPort(pm, "rhs", RHSPortType)
}

func (pm *ProblemModeler) chemistry() ChemistryPort {
	if pm.chem == nil {
		p, err := pm.svc.GetPort("chemistry")
		if err != nil {
			panic(err)
		}
		pm.chem = p.(ChemistryPort)
	}
	return pm.chem
}

// Dim implements RHSPort: T + all species + P.
func (pm *ProblemModeler) Dim() int {
	return pm.chemistry().Mechanism().NumSpecies() + 2
}

// Eval implements RHSPort for y = [T, Y_0..Y_{n-1}, P]. The density of
// the rigid vessel is recovered from the instantaneous state (it is a
// constant of the motion under these equations).
func (pm *ProblemModeler) Eval(t float64, y, ydot []float64) {
	chemPort := pm.chemistry()
	mech := chemPort.Mechanism()
	n := mech.NumSpecies()
	T := y[0]
	Y := y[1 : 1+n]
	P := y[1+n]
	if T < 200 {
		T = 200 // guard transients; chemistry is frozen this cold anyway
	}
	rho := mech.Density(P, T, Y)
	if pm.dY == nil {
		pm.dY = make([]float64, n)
	}
	dT := chemPort.ConstVolume(T, rho, Y, pm.dY)
	ydot[0] = dT
	copy(ydot[1:1+n], pm.dY)

	if pm.dpdt == nil {
		dp, err := pm.svc.GetPort("dpdt")
		if err != nil {
			panic(err)
		}
		pm.dpdt = dp.(DPDtPort)
	}
	ydot[1+n] = pm.dpdt.DPDt(rho, T, dT, Y, pm.dY)
}

// JacFn implements JacobianRHSPort: the analytic Jacobian of Eval over
// z = [T, Y..., P], available when the chemistry runs on a generated
// kernel (chem.RigidVesselJac does the density and pressure-row chain
// rules). Each call returns a closure with private scratch.
func (pm *ProblemModeler) JacFn() cvode.Jac {
	chemPort := pm.chemistry()
	k := chemPort.Kernel()
	if k == nil {
		return nil
	}
	return chem.RigidVesselJac(k, chemPort.Mechanism())
}

// Initializer imposes the 0D initial condition: a vector of double
// precision numbers giving the stoichiometric mass fractions, the
// initial temperature and the initial pressure, settable through
// parameters "T0" (K) and "P0" (Pa).
type Initializer struct {
	T0, P0 float64
	svc    cca.Services
}

// SetServices implements cca.Component.
func (ic *Initializer) SetServices(svc cca.Services) error {
	ic.svc = svc
	ic.T0 = svc.Parameters().GetFloat("T0", 1000)
	ic.P0 = svc.Parameters().GetFloat("P0", chem.PAtm)
	if err := svc.RegisterUsesPort("chemistry", ChemistryPortType); err != nil {
		return err
	}
	return svc.AddProvidesPort(ic, "ic", ICStatePortType)
}

// InitialState implements ICStatePort.
func (ic *Initializer) InitialState() (float64, float64, []float64) {
	p, err := ic.svc.GetPort("chemistry")
	if err != nil {
		panic(err)
	}
	ic.svc.ReleasePort("chemistry")
	mech := p.(ChemistryPort).Mechanism()
	return ic.T0, ic.P0, mech.StoichiometricH2Air()
}
