package components

import (
	"math"
	"sync"

	"ccahydro/internal/amr"
	"ccahydro/internal/cca"
	"ccahydro/internal/euler"
	"ccahydro/internal/field"
	"ccahydro/internal/mpi"
)

// States reconstructs limited left/right face states (paper Sec. 4.3).
// Parameter "limiter" selects mc (default), minmod or first.
type States struct {
	fn euler.StatesFunc
}

// SetServices implements cca.Component.
func (st *States) SetServices(svc cca.Services) error {
	var lim euler.Limiter
	switch svc.Parameters().GetString("limiter", "mc") {
	case "minmod":
		lim = euler.MinMod
	case "first":
		lim = euler.FirstOrder
	default:
		lim = euler.MC
	}
	st.fn = euler.MUSCLStates(lim)
	return svc.AddProvidesPort(st, "states", StatesPortType)
}

// Pair implements StatesPort.
func (st *States) Pair(g euler.Gas, pd *field.PatchData, i, j, dir int) (euler.Primitive, euler.Primitive) {
	return st.fn(g, pd, i, j, dir)
}

// GodunovFluxComp provides the exact-Riemann Godunov flux.
type GodunovFluxComp struct{}

// SetServices implements cca.Component.
func (gf *GodunovFluxComp) SetServices(svc cca.Services) error {
	return svc.AddProvidesPort(gf, "flux", FluxPortType)
}

// Flux implements FluxPort.
func (gf *GodunovFluxComp) Flux(g euler.Gas, l, r euler.Primitive) euler.Conserved {
	return euler.GodunovFlux(g, l, r)
}

// HLLCFluxComp provides the HLLC approximate Riemann flux — a third
// interchangeable flux component (cheaper than the exact solver,
// sharper than EFM), demonstrating the same swap the paper performs.
type HLLCFluxComp struct{}

// SetServices implements cca.Component.
func (hf *HLLCFluxComp) SetServices(svc cca.Services) error {
	return svc.AddProvidesPort(hf, "flux", FluxPortType)
}

// Flux implements FluxPort.
func (hf *HLLCFluxComp) Flux(g euler.Gas, l, r euler.Primitive) euler.Conserved {
	return euler.HLLCFlux(g, l, r)
}

// EFMFluxComp provides Pullin's Equilibrium Flux Method — the paper's
// drop-in replacement for GodunovFlux at Mach ≈ 3.5.
type EFMFluxComp struct{}

// SetServices implements cca.Component.
func (ef *EFMFluxComp) SetServices(svc cca.Services) error {
	return svc.AddProvidesPort(ef, "flux", FluxPortType)
}

// Flux implements FluxPort.
func (ef *EFMFluxComp) Flux(g euler.Gas, l, r euler.Primitive) euler.Conserved {
	return euler.EFMFlux(g, l, r)
}

// InviscidFlux is the adaptor that supplies the right-hand side of the
// Euler equations patch by patch: it uses a States component to set up
// the Riemann problem at each cell interface and passes it to the
// connected flux component for the solution (paper Sec. 4.3).
type InviscidFlux struct {
	svc cca.Services
	// The assembled solver resolves once: ports are interface values
	// after connection, and concurrent EvalPatch calls (the integrator
	// fans patches out) must not mutate component state.
	once   sync.Once
	solved euler.Solver
}

// SetServices implements cca.Component.
func (iv *InviscidFlux) SetServices(svc cca.Services) error {
	iv.svc = svc
	for _, u := range [][2]string{
		{"states", StatesPortType},
		{"flux", FluxPortType},
		{"gasProperties", KeyValuePortType},
	} {
		if err := svc.RegisterUsesPort(u[0], u[1]); err != nil {
			return err
		}
	}
	if err := registerExecPort(svc); err != nil {
		return err
	}
	return svc.AddProvidesPort(iv, "patchRHS", PatchRHSPortType)
}

func (iv *InviscidFlux) solver() *euler.Solver {
	iv.once.Do(func() {
		sp, err := iv.svc.GetPort("states")
		if err != nil {
			panic(err)
		}
		iv.svc.ReleasePort("states")
		fp, err := iv.svc.GetPort("flux")
		if err != nil {
			panic(err)
		}
		iv.svc.ReleasePort("flux")
		gp, err := iv.svc.GetPort("gasProperties")
		if err != nil {
			panic(err)
		}
		iv.svc.ReleasePort("gasProperties")
		gamma, ok := gp.(KeyValuePort).Value("gamma")
		if !ok {
			gamma = euler.AirGamma
		}
		iv.solved = euler.Solver{
			Gas:    euler.Gas{Gamma: gamma},
			Flux:   fp.(FluxPort).Flux,
			States: sp.(StatesPort).Pair,
			// Nested parallelism: the integrator fans patches out, and
			// within a patch the solver fans rows out on the same pool
			// (caller participation makes the nesting deadlock-free).
			Pool: optionalPool(iv.svc),
		}
	})
	return &iv.solved
}

// EvalPatch implements PatchRHSPort. Safe for concurrent calls on
// different patches.
func (iv *InviscidFlux) EvalPatch(pd, out *field.PatchData, dx, dy float64) {
	iv.solver().RHSPatch(pd, out, dx, dy)
}

// EvalRegion implements RegionRHSPort: the same flux divergence
// restricted to a sub-box. Face fluxes are pure functions of the cells
// behind them, so disjoint regions reproduce EvalPatch bit for bit.
func (iv *InviscidFlux) EvalRegion(pd, out *field.PatchData, region amr.Box, dx, dy float64) {
	iv.solver().RHSRegion(pd, out, region, dx, dy)
}

// CharacteristicQuantities determines the characteristic speeds for
// dynamic time-step control (paper Sec. 4.3).
type CharacteristicQuantities struct {
	svc cca.Services
}

// SetServices implements cca.Component.
func (cq *CharacteristicQuantities) SetServices(svc cca.Services) error {
	cq.svc = svc
	if err := svc.RegisterUsesPort("gasProperties", KeyValuePortType); err != nil {
		return err
	}
	if err := registerExecPort(svc); err != nil {
		return err
	}
	return svc.AddProvidesPort(cq, "characteristics", CharacteristicsPortType)
}

// StableDt implements CharacteristicsPort: the CFL-limited step of a
// level, reduced across the cohort. Per-patch scans are independent
// and fan out over the pool; min is order-independent, so the parallel
// fold equals the serial one bit-for-bit.
func (cq *CharacteristicQuantities) StableDt(mesh MeshPort, name string, level int) float64 {
	gp, err := cq.svc.GetPort("gasProperties")
	if err != nil {
		panic(err)
	}
	cq.svc.ReleasePort("gasProperties")
	gamma, ok := gp.(KeyValuePort).Value("gamma")
	if !ok {
		gamma = euler.AirGamma
	}
	cfl := cq.svc.Parameters().GetFloat("cfl", 0.45)
	s := &euler.Solver{Gas: euler.Gas{Gamma: gamma}, CFL: cfl}
	d := mesh.Field(name)
	dx, dy := mesh.Spacing(level)
	patches := d.LocalPatches(level)
	partial := make([]float64, len(patches))
	optionalPool(cq.svc).ForEach(len(patches), func(_, i int) {
		partial[i] = s.StableDt(patches[i], dx, dy)
	})
	dt := math.Inf(1)
	for _, v := range partial {
		if v < dt {
			dt = v
		}
	}
	if comm := cq.svc.Comm(); comm != nil && comm.Size() > 1 {
		dt = comm.AllreduceScalar(mpi.OpMin, dt)
	}
	return dt
}

// BoundaryConditions sets the shock-tube walls: reflecting above and
// below, outflow left and right by default (paper Sec. 4.3).
// Parameters "xlo", "xhi", "ylo", "yhi" accept "outflow" or "reflect".
type BoundaryConditions struct {
	svc cca.Services
}

// SetServices implements cca.Component.
func (bc *BoundaryConditions) SetServices(svc cca.Services) error {
	bc.svc = svc
	if err := svc.RegisterUsesPort("mesh", MeshPortType); err != nil {
		return err
	}
	return svc.AddProvidesPort(bc, "bc", BCPortType)
}

func (bc *BoundaryConditions) spec(side string, def string, normalComp int) field.BCSpec {
	switch bc.svc.Parameters().GetString(side, def) {
	case "reflect":
		return field.BCSpec{Kind: field.BCReflect, OddComps: []int{normalComp}}
	default:
		return field.BCSpec{Kind: field.BCOutflow}
	}
}

// Apply implements BCPort for the conserved hydro field.
func (bc *BoundaryConditions) Apply(name string, level int) {
	mp, err := bc.svc.GetPort("mesh")
	if err != nil {
		panic(err)
	}
	bc.svc.ReleasePort("mesh")
	mesh := mp.(MeshPort)
	bcs := field.BCSet{
		field.XLo: bc.spec("xlo", "outflow", euler.IMx),
		field.XHi: bc.spec("xhi", "outflow", euler.IMx),
		field.YLo: bc.spec("ylo", "reflect", euler.IMy),
		field.YHi: bc.spec("yhi", "reflect", euler.IMy),
	}
	mesh.Field(name).ApplyPhysicalBCs(level, bcs)
}

// ProlongRestrict performs the cell-centered interpolations between
// levels (paper Sec. 4.3).
type ProlongRestrict struct{}

// SetServices implements cca.Component.
func (pr *ProlongRestrict) SetServices(svc cca.Services) error {
	return svc.AddProvidesPort(pr, "prolongRestrict", ProlongRestrictPortType)
}

// Prolong implements ProlongRestrictPort.
func (pr *ProlongRestrict) Prolong(mesh MeshPort, name string, level int) {
	mesh.Field(name).ProlongLevel(level, field.ProlongLinear)
}

// Restrict implements ProlongRestrictPort.
func (pr *ProlongRestrict) Restrict(mesh MeshPort, name string, level int) {
	mesh.Field(name).RestrictLevel(level)
}

// FillCoarseFine implements ProlongRestrictPort.
func (pr *ProlongRestrict) FillCoarseFine(mesh MeshPort, name string, level int) {
	mesh.Field(name).FillCoarseFineGhosts(level, field.ProlongLinear)
}

// ConicalInterfaceIC sets up the paper's shock-tube problem: Air and
// Freon (density ratio from the GasProperties database) separated by an
// oblique interface, ruptured by a rightward-moving shock of the given
// Mach number. Nondimensional units: pre-shock air has rho=1, p=1.
// Parameters:
//
//	interfaceX   interface foot position as a fraction of Lx (default 0.40)
//	angleDeg     interface angle from the vertical (default 30)
//	shockX       initial shock position fraction (default 0.20)
type ConicalInterfaceIC struct {
	svc cca.Services
}

// SetServices implements cca.Component.
func (ci *ConicalInterfaceIC) SetServices(svc cca.Services) error {
	ci.svc = svc
	if err := svc.RegisterUsesPort("gasProperties", KeyValuePortType); err != nil {
		return err
	}
	return svc.AddProvidesPort(ci, "ic", ICFieldPortType)
}

// PostShockState returns the Rankine–Hugoniot state behind a Mach-M
// shock moving into still gas (rho1, p1).
func PostShockState(gamma, mach, rho1, p1 float64) euler.Primitive {
	c1 := math.Sqrt(gamma * p1 / rho1)
	m2 := mach * mach
	p2 := p1 * (1 + 2*gamma/(gamma+1)*(m2-1))
	rho2 := rho1 * (gamma + 1) * m2 / ((gamma-1)*m2 + 2)
	u2 := 2 * c1 / (gamma + 1) * (m2 - 1) / mach
	return euler.Primitive{Rho: rho2, U: u2, P: p2}
}

// Impose implements ICFieldPort on the conserved field.
func (ci *ConicalInterfaceIC) Impose(mesh MeshPort, name string) {
	gp, err := ci.svc.GetPort("gasProperties")
	if err != nil {
		panic(err)
	}
	ci.svc.ReleasePort("gasProperties")
	db := gp.(KeyValuePort)
	gamma, _ := db.Value("gamma")
	if gamma == 0 {
		gamma = euler.AirGamma
	}
	ratio, ok := db.Value("densityRatio")
	if !ok {
		ratio = 3.0
	}
	mach, ok := db.Value("mach")
	if !ok {
		mach = 1.5
	}
	params := ci.svc.Parameters()
	ifaceX := params.GetFloat("interfaceX", 0.40)
	angle := params.GetFloat("angleDeg", 30) * math.Pi / 180
	shockX := params.GetFloat("shockX", 0.20)

	g := euler.Gas{Gamma: gamma}
	air := euler.Primitive{Rho: 1, P: 1, Zeta: 0}
	freon := euler.Primitive{Rho: ratio, P: 1, Zeta: 1}
	post := PostShockState(gamma, mach, air.Rho, air.P)

	d := mesh.Field(name)
	h := d.Hierarchy()
	for l := 0; l < h.NumLevels(); l++ {
		dx, dy := mesh.Spacing(l)
		// Physical domain size (level-independent).
		LX := dx * float64(h.LevelDomain(l).Hi[0]+1)
		for _, pd := range d.LocalPatches(l) {
			gb := pd.GrownBox()
			for j := gb.Lo[1]; j <= gb.Hi[1]; j++ {
				for i := gb.Lo[0]; i <= gb.Hi[0]; i++ {
					x := (float64(i) + 0.5) * dx
					y := (float64(j) + 0.5) * dy
					var w euler.Primitive
					// Interface: x = ifaceX*LX + y*tan(angle).
					xi := ifaceX*LX + y*math.Tan(angle)
					switch {
					case x < shockX*LX:
						w = post
					case x < xi:
						w = air
					default:
						w = freon
					}
					u := g.ToConserved(w)
					for k := 0; k < euler.NumComp; k++ {
						pd.Set(k, i, j, u[k])
					}
				}
			}
		}
	}
}
