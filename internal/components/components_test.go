package components

import (
	"bytes"
	"math"
	"testing"

	"ccahydro/internal/amr"
	"ccahydro/internal/cca"
	"ccahydro/internal/chem"
	"ccahydro/internal/euler"
	"ccahydro/internal/field"
)

// harness wires a minimal framework for component unit tests.
func harness(t *testing.T, setup func(f *cca.Framework)) *cca.Framework {
	t.Helper()
	f := cca.NewFramework(NewRepository(), nil)
	setup(f)
	return f
}

func mustDo(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// ---- ThermoChemistry ------------------------------------------------------

func TestThermoChemistryPorts(t *testing.T) {
	f := harness(t, func(f *cca.Framework) {
		mustDo(t, f.Instantiate("ThermoChemistry", "chem"))
	})
	comp, _ := f.Lookup("chem")
	tc := comp.(*ThermoChemistry)
	if tc.Mechanism().NumSpecies() != 9 {
		t.Errorf("default mechanism species = %d", tc.Mechanism().NumSpecies())
	}
	// Database port holds the gas properties.
	kv := keyValueView{tc}
	if v, ok := kv.Value("nspecies"); !ok || v != 9 {
		t.Errorf("nspecies = %v, %v", v, ok)
	}
	if v, ok := kv.Value("W_H2"); !ok || math.Abs(v-2.016e-3) > 1e-6 {
		t.Errorf("W_H2 = %v", v)
	}
	kv.SetValue("custom", 42)
	if v, _ := kv.Value("custom"); v != 42 {
		t.Error("SetValue failed")
	}
}

func TestThermoChemistryLiteParameter(t *testing.T) {
	f := harness(t, func(f *cca.Framework) {
		mustDo(t, f.SetParameter("chem", "mech", "h2air-lite"))
		mustDo(t, f.Instantiate("ThermoChemistry", "chem"))
	})
	comp, _ := f.Lookup("chem")
	if n := comp.(*ThermoChemistry).Mechanism().NumReactions(); n != 5 {
		t.Errorf("lite reactions = %d", n)
	}
}

func TestThermoChemistryBadMechanism(t *testing.T) {
	f := cca.NewFramework(NewRepository(), nil)
	mustDo(t, f.SetParameter("chem", "mech", "nope"))
	if err := f.Instantiate("ThermoChemistry", "chem"); err == nil {
		t.Error("expected error for unknown mechanism")
	}
}

// ---- ProblemModeler / DPDt --------------------------------------------------

func modelFixture(t *testing.T) (*cca.Framework, *ProblemModeler) {
	f := harness(t, func(f *cca.Framework) {
		mustDo(t, f.Instantiate("ThermoChemistry", "chem"))
		mustDo(t, f.Instantiate("DPDt", "dpdt"))
		mustDo(t, f.Instantiate("ProblemModeler", "model"))
		mustDo(t, f.Connect("dpdt", "chemistry", "chem", "chemistry"))
		mustDo(t, f.Connect("model", "chemistry", "chem", "chemistry"))
		mustDo(t, f.Connect("model", "dpdt", "dpdt", "dpdt"))
	})
	comp, _ := f.Lookup("model")
	return f, comp.(*ProblemModeler)
}

func TestProblemModelerRHS(t *testing.T) {
	_, pm := modelFixture(t)
	if pm.Dim() != 11 { // T + 9 species + P
		t.Errorf("dim = %d", pm.Dim())
	}
	mech := chem.H2Air()
	y := make([]float64, 11)
	y[0] = 1600
	copy(y[1:10], mech.StoichiometricH2Air())
	// seed OH for heat release
	y[1+mech.SpeciesIndex("OH")] = 1e-2
	chem.NormalizeY(y[1:10])
	y[10] = chem.PAtm
	ydot := make([]float64, 11)
	pm.Eval(0, y, ydot)
	if ydot[0] <= 0 {
		t.Errorf("dT/dt = %v, want positive for OH-seeded mixture", ydot[0])
	}
	if ydot[10] <= 0 {
		t.Errorf("dP/dt = %v, want positive in heating rigid vessel", ydot[10])
	}
	// Mass conservation in fraction space.
	var s float64
	for _, v := range ydot[1:10] {
		s += v
	}
	if math.Abs(s) > 1e-6 {
		t.Errorf("sum dY/dt = %v", s)
	}
}

// ---- GrACEComponent ---------------------------------------------------------

func graceFixture(t *testing.T, params ...[2]string) *GrACEComponent {
	f := harness(t, func(f *cca.Framework) {
		for _, p := range params {
			mustDo(t, f.SetParameter("grace", p[0], p[1]))
		}
		mustDo(t, f.Instantiate("GrACEComponent", "grace"))
	})
	comp, _ := f.Lookup("grace")
	return comp.(*GrACEComponent)
}

func TestGrACEDeclareAndSpacing(t *testing.T) {
	gc := graceFixture(t, [2]string{"nx", "50"}, [2]string{"ny", "50"}, [2]string{"lx", "0.01"}, [2]string{"ly", "0.01"})
	d := gc.Declare("phi", 3, 2)
	if d == nil || gc.Field("phi") != d {
		t.Fatal("declare/field mismatch")
	}
	// Re-declare returns the same object.
	if gc.Declare("phi", 3, 2) != d {
		t.Error("re-declare created a new object")
	}
	dx, dy := gc.Spacing(0)
	if math.Abs(dx-2e-4) > 1e-12 || math.Abs(dy-2e-4) > 1e-12 {
		t.Errorf("spacing = %v, %v", dx, dy)
	}
	dx1, _ := gc.Spacing(1)
	if math.Abs(dx1-1e-4) > 1e-12 {
		t.Errorf("level-1 spacing = %v", dx1)
	}
}

func TestGrACERegridRemapsFields(t *testing.T) {
	gc := graceFixture(t, [2]string{"nx", "32"}, [2]string{"ny", "32"}, [2]string{"maxLevels", "2"})
	d := gc.Declare("phi", 1, 2)
	for _, pd := range d.LocalPatches(0) {
		pd.FillAll(7)
	}
	flags := amr.NewFlagField(gc.Hierarchy().LevelDomain(0))
	flags.SetBox(amr.NewBox(10, 10, 19, 19))
	gc.Regrid([]*amr.FlagField{flags}, amr.RegridOptions{})
	if gc.Hierarchy().NumLevels() != 2 {
		t.Fatalf("levels = %d", gc.Hierarchy().NumLevels())
	}
	// Data survived the remap, including prolongation onto level 1.
	nd := gc.Field("phi")
	if nd == d {
		t.Error("field object not replaced by remap")
	}
	for l := 0; l < 2; l++ {
		for _, pd := range nd.LocalPatches(l) {
			b := pd.Interior()
			if v := pd.At(0, b.Lo[0], b.Lo[1]); v != 7 {
				t.Errorf("level %d value = %v, want 7", l, v)
			}
		}
	}
}

func TestGrACESetBCSet(t *testing.T) {
	gc := graceFixture(t, [2]string{"nx", "8"}, [2]string{"ny", "8"})
	if err := gc.SetBCSet("missing", field.BCSet{}); err == nil {
		t.Error("expected error for undeclared field")
	}
	gc.Declare("phi", 1, 1)
	mustDo(t, gc.SetBCSet("phi", field.UniformBC(field.BCSpec{Kind: field.BCDirichlet, Value: -3})))
	d := gc.Field("phi")
	d.LocalPatches(0)[0].FillAll(1)
	gc.Apply("phi", 0)
	if got := d.LocalPatches(0)[0].At(0, -1, 4); got != -3 {
		t.Errorf("custom BC value = %v", got)
	}
}

// ---- InitialCondition --------------------------------------------------------

func TestInitialConditionHotSpots(t *testing.T) {
	f := harness(t, func(f *cca.Framework) {
		mustDo(t, f.SetParameter("grace", "nx", "40"))
		mustDo(t, f.SetParameter("grace", "ny", "40"))
		mustDo(t, f.Instantiate("GrACEComponent", "grace"))
		mustDo(t, f.Instantiate("ThermoChemistry", "chem"))
		mustDo(t, f.Instantiate("InitialCondition", "ic"))
		mustDo(t, f.Connect("ic", "chemistry", "chem", "chemistry"))
	})
	gComp, _ := f.Lookup("grace")
	gc := gComp.(*GrACEComponent)
	gc.Declare("phi", 10, 2)
	icComp, _ := f.Lookup("ic")
	icComp.(*InitialCondition).Impose(gc, "phi")

	d := gc.Field("phi")
	pd := d.LocalPatches(0)[0]
	var tmin, tmax float64 = 1e300, -1e300
	b := pd.Interior()
	for j := b.Lo[1]; j <= b.Hi[1]; j++ {
		for i := b.Lo[0]; i <= b.Hi[0]; i++ {
			v := pd.At(0, i, j)
			if v < tmin {
				tmin = v
			}
			if v > tmax {
				tmax = v
			}
			// Mass fractions stoichiometric everywhere.
			var s float64
			for k := 1; k < 10; k++ {
				s += pd.At(k, i, j)
			}
			if math.Abs(s-1) > 1e-12 {
				t.Fatalf("Y sum = %v at (%d,%d)", s, i, j)
			}
		}
	}
	if tmin < 299 || tmin > 350 {
		t.Errorf("background T = %v", tmin)
	}
	if tmax < 1500 {
		t.Errorf("hot spot peak = %v", tmax)
	}
}

// ---- ErrorEstAndRegrid --------------------------------------------------------

func TestErrorEstAndRegridFlagsGradients(t *testing.T) {
	f := harness(t, func(f *cca.Framework) {
		mustDo(t, f.SetParameter("grace", "nx", "32"))
		mustDo(t, f.SetParameter("grace", "ny", "32"))
		mustDo(t, f.SetParameter("grace", "maxLevels", "2"))
		mustDo(t, f.Instantiate("GrACEComponent", "grace"))
		mustDo(t, f.Instantiate("ErrorEstAndRegrid", "regrid"))
	})
	gComp, _ := f.Lookup("grace")
	gc := gComp.(*GrACEComponent)
	d := gc.Declare("phi", 1, 2)
	// Step function at x=16: steep gradient there only.
	pd := d.LocalPatches(0)[0]
	g := pd.GrownBox()
	for j := g.Lo[1]; j <= g.Hi[1]; j++ {
		for i := g.Lo[0]; i <= g.Hi[0]; i++ {
			v := 0.0
			if i >= 16 {
				v = 1
			}
			pd.Set(0, i, j, v)
		}
	}
	rComp, _ := f.Lookup("regrid")
	changed := rComp.(*ErrorEstAndRegrid).EstimateAndRegrid(gc, "phi")
	if !changed {
		t.Fatal("regrid reported no change for a step function")
	}
	h := gc.Hierarchy()
	if h.NumLevels() != 2 {
		t.Fatalf("levels = %d", h.NumLevels())
	}
	// The fine level hugs the discontinuity column.
	for _, p := range h.Level(1).Patches {
		if p.Box.Lo[0] > 40 || p.Box.Hi[0] < 24 {
			t.Errorf("fine patch %v does not straddle the jump at fine-x=32", p.Box)
		}
	}
	// Uniform field: regrid drops refinement.
	for _, pd := range gc.Field("phi").LocalPatches(0) {
		pd.FillAll(5)
	}
	rComp.(*ErrorEstAndRegrid).EstimateAndRegrid(gc, "phi")
	if gc.Hierarchy().NumLevels() != 1 {
		t.Errorf("uniform field still refined: %d levels", gc.Hierarchy().NumLevels())
	}
}

// ---- hydro components ---------------------------------------------------------

func TestPostShockState(t *testing.T) {
	// Mach 1.5 into air (rho=1, p=1, gamma=1.4): standard RH values.
	w := PostShockState(1.4, 1.5, 1, 1)
	if math.Abs(w.P-2.4583) > 1e-3 {
		t.Errorf("p2 = %v, want 2.458", w.P)
	}
	if math.Abs(w.Rho-1.8621) > 1e-3 {
		t.Errorf("rho2 = %v, want 1.862", w.Rho)
	}
	if math.Abs(w.U-0.6944*math.Sqrt(1.4)) > 1e-3 {
		t.Errorf("u2 = %v", w.U)
	}
	// Mach 1: no jump.
	w1 := PostShockState(1.4, 1, 1, 1)
	if math.Abs(w1.P-1) > 1e-12 || math.Abs(w1.Rho-1) > 1e-12 || math.Abs(w1.U) > 1e-12 {
		t.Errorf("Mach-1 'shock' changed the state: %+v", w1)
	}
}

func TestConicalInterfaceICStates(t *testing.T) {
	f := harness(t, func(f *cca.Framework) {
		mustDo(t, f.SetParameter("grace", "nx", "40"))
		mustDo(t, f.SetParameter("grace", "ny", "20"))
		mustDo(t, f.SetParameter("grace", "lx", "2.0"))
		mustDo(t, f.SetParameter("grace", "ly", "1.0"))
		mustDo(t, f.Instantiate("GrACEComponent", "grace"))
		mustDo(t, f.Instantiate("GasProperties", "gas"))
		mustDo(t, f.Instantiate("ConicalInterfaceIC", "ic"))
		mustDo(t, f.Connect("ic", "gasProperties", "gas", "properties"))
	})
	gComp, _ := f.Lookup("grace")
	gc := gComp.(*GrACEComponent)
	gc.Declare("U", euler.NumComp, 2)
	icComp, _ := f.Lookup("ic")
	icComp.(*ConicalInterfaceIC).Impose(gc, "U")

	pd := gc.Field("U").LocalPatches(0)[0]
	g := euler.Gas{Gamma: 1.4}
	read := func(i, j int) euler.Primitive {
		var u euler.Conserved
		for k := 0; k < euler.NumComp; k++ {
			u[k] = pd.At(k, i, j)
		}
		return g.ToPrimitive(u)
	}
	// Far left: post-shock (moving, compressed).
	wl := read(1, 10)
	if wl.U <= 0 || wl.P <= 1.5 {
		t.Errorf("post-shock state = %+v", wl)
	}
	// Middle (between shock at 0.4 and interface foot at 0.8): quiescent air.
	wm := read(12, 1)
	if math.Abs(wm.Rho-1) > 1e-9 || math.Abs(wm.P-1) > 1e-9 || wm.Zeta != 0 {
		t.Errorf("air state = %+v", wm)
	}
	// Far right: Freon, density 3, zeta 1.
	wr := read(38, 10)
	if math.Abs(wr.Rho-3) > 1e-9 || wr.Zeta != 1 {
		t.Errorf("freon state = %+v", wr)
	}
}

func TestBoundaryConditionsComponent(t *testing.T) {
	f := harness(t, func(f *cca.Framework) {
		mustDo(t, f.SetParameter("grace", "nx", "8"))
		mustDo(t, f.SetParameter("grace", "ny", "8"))
		mustDo(t, f.Instantiate("GrACEComponent", "grace"))
		mustDo(t, f.Instantiate("BoundaryConditions", "bc"))
		mustDo(t, f.Connect("bc", "mesh", "grace", "mesh"))
	})
	gComp, _ := f.Lookup("grace")
	gc := gComp.(*GrACEComponent)
	gc.Declare("U", euler.NumComp, 2)
	pd := gc.Field("U").LocalPatches(0)[0]
	gbox := pd.GrownBox()
	for j := gbox.Lo[1]; j <= gbox.Hi[1]; j++ {
		for i := gbox.Lo[0]; i <= gbox.Hi[0]; i++ {
			pd.Set(euler.IRho, i, j, 1)
			pd.Set(euler.IMy, i, j, 0.5)
		}
	}
	bComp, _ := f.Lookup("bc")
	bComp.(*BoundaryConditions).Apply("U", 0)
	// Bottom wall reflects: ghost y-momentum flips sign.
	if got := pd.At(euler.IMy, 4, -1); got != -0.5 {
		t.Errorf("reflected My = %v, want -0.5", got)
	}
	// Density mirrors without flip.
	if got := pd.At(euler.IRho, 4, -1); got != 1 {
		t.Errorf("mirrored rho = %v", got)
	}
	// X sides default to outflow.
	if got := pd.At(euler.IMy, -1, 4); got != 0.5 {
		t.Errorf("outflow My = %v", got)
	}
}

func TestStatesComponentLimiterParameter(t *testing.T) {
	f := harness(t, func(f *cca.Framework) {
		mustDo(t, f.SetParameter("states", "limiter", "first"))
		mustDo(t, f.Instantiate("States", "states"))
	})
	comp, _ := f.Lookup("states")
	st := comp.(*States)
	// With first-order states, l/r at a jump equal the cell averages.
	h := amr.NewHierarchy(amr.NewBox(0, 0, 7, 7), 2, 1, 1)
	d := field.New("U", h, euler.NumComp, 2, nil)
	pd := d.LocalPatches(0)[0]
	g := euler.Gas{Gamma: 1.4}
	gbox := pd.GrownBox()
	for j := gbox.Lo[1]; j <= gbox.Hi[1]; j++ {
		for i := gbox.Lo[0]; i <= gbox.Hi[0]; i++ {
			w := euler.Primitive{Rho: 1, P: 1}
			if i >= 4 {
				w.Rho = 2
			}
			u := g.ToConserved(w)
			for k := 0; k < euler.NumComp; k++ {
				pd.Set(k, i, j, u[k])
			}
		}
	}
	l, r := st.Pair(g, pd, 4, 4, 0)
	if l.Rho != 1 || r.Rho != 2 {
		t.Errorf("first-order states = %v, %v", l.Rho, r.Rho)
	}
}

func TestFluxComponentsAgreeOnSmooth(t *testing.T) {
	gf := &GodunovFluxComp{}
	ef := &EFMFluxComp{}
	g := euler.Gas{Gamma: 1.4}
	w := euler.Primitive{Rho: 1.2, U: 0.3, V: -0.1, P: 2, Zeta: 0.5}
	fg := gf.Flux(g, w, w)
	fe := ef.Flux(g, w, w)
	for k := 0; k < euler.NumComp; k++ {
		if math.Abs(fg[k]-fe[k]) > 1e-9*math.Max(1, math.Abs(fg[k])) {
			t.Errorf("flux[%d]: godunov %v, efm %v", k, fg[k], fe[k])
		}
	}
}

// ---- StatisticsComponent -------------------------------------------------------

func TestStatisticsComponent(t *testing.T) {
	f := harness(t, func(f *cca.Framework) {
		mustDo(t, f.Instantiate("StatisticsComponent", "stats"))
	})
	comp, _ := f.Lookup("stats")
	sc := comp.(*StatisticsComponent)
	sc.Record("a", 1)
	sc.Record("a", 2)
	sc.Record("b", 3)
	if got := sc.Get("a"); len(got) != 2 || got[1] != 2 {
		t.Errorf("Get(a) = %v", got)
	}
	if keys := sc.Keys(); len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("Keys = %v", keys)
	}
	if sc.Get("zzz") != nil {
		t.Error("missing key should return nil")
	}
}

// ---- CvodeComponent -------------------------------------------------------------

// vecRHS is a trivial RHSPort for integrator tests.
type vecRHS struct{}

func (vecRHS) SetServices(svc cca.Services) error {
	return svc.AddProvidesPort(vecRHS{}, "rhs", RHSPortType)
}
func (vecRHS) Dim() int { return 1 }
func (vecRHS) Eval(_ float64, y, ydot []float64) {
	ydot[0] = -2 * y[0]
}

func TestCvodeComponentIntegrates(t *testing.T) {
	repo := cca.NewRepository()
	repo.Register("VecRHS", func() cca.Component { return vecRHS{} })
	repo.Register("CvodeComponent", func() cca.Component { return &CvodeComponent{} })
	f := cca.NewFramework(repo, nil)
	mustDo(t, f.Instantiate("VecRHS", "rhs"))
	mustDo(t, f.Instantiate("CvodeComponent", "cvode"))
	mustDo(t, f.Connect("cvode", "rhs", "rhs", "rhs"))
	comp, _ := f.Lookup("cvode")
	cc := comp.(*CvodeComponent)
	y := []float64{3}
	st, err := cc.IntegrateTo(0, 1, y)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * math.Exp(-2)
	if math.Abs(y[0]-want) > 1e-5 {
		t.Errorf("y(1) = %v, want %v", y[0], want)
	}
	if st.Steps == 0 || cc.TotalStats().RHSEvals == 0 {
		t.Errorf("stats empty: %+v", st)
	}
}

func TestGrACEAdoptRestoredField(t *testing.T) {
	gc := graceFixture(t, [2]string{"nx", "16"}, [2]string{"ny", "16"})
	d := gc.Declare("U", 2, 1)
	d.LocalPatches(0)[0].FillAll(9)

	// Round-trip through a checkpoint buffer.
	var buf bytes.Buffer
	if err := d.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := field.ReadCheckpoint(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}

	gc2 := graceFixture(t, [2]string{"nx", "16"}, [2]string{"ny", "16"})
	gc2.Adopt("U", restored)
	if gc2.Field("U") != restored {
		t.Fatal("adopt did not install the field")
	}
	if gc2.Hierarchy() != restored.Hierarchy() {
		t.Fatal("adopt did not install the hierarchy")
	}
	if got := gc2.Field("U").LocalPatches(0)[0].At(0, 4, 4); got != 9 {
		t.Errorf("restored value = %v", got)
	}
	// BCs work on the adopted field.
	gc2.Apply("U", 0)
}

func TestProlongRestrictComponent(t *testing.T) {
	f := harness(t, func(f *cca.Framework) {
		mustDo(t, f.SetParameter("grace", "nx", "32"))
		mustDo(t, f.SetParameter("grace", "ny", "32"))
		mustDo(t, f.SetParameter("grace", "maxLevels", "2"))
		mustDo(t, f.Instantiate("GrACEComponent", "grace"))
		mustDo(t, f.Instantiate("ProlongRestrict", "pr"))
	})
	gComp, _ := f.Lookup("grace")
	gc := gComp.(*GrACEComponent)
	gc.Declare("u", 1, 2)
	flags := amr.NewFlagField(gc.Hierarchy().LevelDomain(0))
	flags.SetBox(amr.NewBox(8, 8, 23, 23))
	gc.Regrid([]*amr.FlagField{flags}, amr.RegridOptions{})

	d := gc.Field("u")
	for _, pd := range d.LocalPatches(0) {
		pd.FillAll(3)
	}
	for _, pd := range d.LocalPatches(1) {
		pd.FillAll(0)
	}
	prComp, _ := f.Lookup("pr")
	pr := prComp.(*ProlongRestrict)
	pr.Prolong(gc, "u", 1)
	for _, pd := range d.LocalPatches(1) {
		b := pd.Interior()
		if got := pd.At(0, b.Lo[0]+2, b.Lo[1]+2); got != 3 {
			t.Fatalf("prolonged value = %v", got)
		}
	}
	// Overwrite fine with 7; restriction pushes it down.
	for _, pd := range d.LocalPatches(1) {
		pd.FillAll(7)
	}
	pr.Restrict(gc, "u", 1)
	foot := gc.Hierarchy().Level(1).Patches[0].Box.Coarsen(2)
	for _, pd := range d.LocalPatches(0) {
		ov := pd.Interior().Intersect(foot)
		if ov.Empty() {
			continue
		}
		if got := pd.At(0, ov.Lo[0], ov.Lo[1]); got != 7 {
			t.Fatalf("restricted value = %v", got)
		}
	}
	// Coarse-fine ghost fill runs without panicking.
	pr.FillCoarseFine(gc, "u", 1)
}
