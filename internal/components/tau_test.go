package components

import (
	"strings"
	"testing"
	"time"

	"ccahydro/internal/amr"
	"ccahydro/internal/cca"
	"ccahydro/internal/exec"
	"ccahydro/internal/field"
)

func TestTauTimerSummary(t *testing.T) {
	f := harness(t, func(f *cca.Framework) {
		mustDo(t, f.Instantiate("TauTimer", "tau"))
	})
	comp, _ := f.Lookup("tau")
	tt := comp.(*TauTimer)
	tt.Record("slow", 2)
	tt.Record("slow", 1)
	tt.Record("fast", 0.1)
	tt.Time("timed", func() {})
	sum := tt.Summary()
	if len(sum) != 3 {
		t.Fatalf("entries = %d", len(sum))
	}
	if sum[0].Name != "slow" || sum[0].Calls != 2 || sum[0].Seconds != 3 {
		t.Errorf("top entry = %+v", sum[0])
	}
	var b strings.Builder
	tt.WriteReport(&b)
	if !strings.Contains(b.String(), "slow") || !strings.Contains(b.String(), "timed") {
		t.Errorf("report missing timers:\n%s", b.String())
	}
}

// TestTauTimerNestedTime pins the aggregation semantics under nesting:
// an outer Time surrounding an inner Time records both timers
// independently, and the outer total always covers the inner total
// (inclusive timing, the TAU convention).
func TestTauTimerNestedTime(t *testing.T) {
	f := harness(t, func(f *cca.Framework) {
		mustDo(t, f.Instantiate("TauTimer", "tau"))
	})
	comp, _ := f.Lookup("tau")
	tt := comp.(*TauTimer)
	const reps = 3
	for i := 0; i < reps; i++ {
		tt.Time("outer", func() {
			tt.Time("inner", func() {
				time.Sleep(time.Millisecond)
			})
		})
	}
	var outer, inner *TimingEntry
	sum := tt.Summary()
	for i := range sum {
		switch sum[i].Name {
		case "outer":
			outer = &sum[i]
		case "inner":
			inner = &sum[i]
		}
	}
	if outer == nil || inner == nil {
		t.Fatalf("summary = %+v", sum)
	}
	if outer.Calls != reps || inner.Calls != reps {
		t.Errorf("calls outer=%d inner=%d, want %d each", outer.Calls, inner.Calls, reps)
	}
	if outer.Seconds < inner.Seconds {
		t.Errorf("inclusive outer %.6fs < inner %.6fs", outer.Seconds, inner.Seconds)
	}
	if inner.Seconds < reps*0.0005 {
		t.Errorf("inner total %.6fs implausibly small for %d 1ms sleeps", inner.Seconds, reps)
	}
}

// TestTauTimerConcurrentRecord hammers one timer sink from execution-
// pool goroutines — the way instrumented RHS components actually share
// a TauTimer when level drivers fan out — and checks no observation is
// lost. Under -race this is the timer's data-race gate.
func TestTauTimerConcurrentRecord(t *testing.T) {
	f := harness(t, func(f *cca.Framework) {
		mustDo(t, f.Instantiate("TauTimer", "tau"))
	})
	comp, _ := f.Lookup("tau")
	tt := comp.(*TauTimer)
	const n = 4000
	pool := exec.NewPool(8)
	pool.ForEach(n, func(w, i int) {
		tt.Record("shared", 0.001)
		if i%3 == 0 {
			tt.Time("timed", func() {})
		}
		if i%97 == 0 {
			tt.Summary() // readers interleave with writers
		}
	})
	var shared, timed TimingEntry
	for _, e := range tt.Summary() {
		switch e.Name {
		case "shared":
			shared = e
		case "timed":
			timed = e
		}
	}
	if shared.Calls != n {
		t.Errorf("shared calls = %d, want %d (lost updates)", shared.Calls, n)
	}
	if got, want := shared.Seconds, float64(n)*0.001; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("shared seconds = %v, want %v", got, want)
	}
	if wantTimed := (n + 2) / 3; timed.Calls != wantTimed {
		t.Errorf("timed calls = %d, want %d", timed.Calls, wantTimed)
	}
}

// countingRHS is a synthetic inner RHS with a known per-call latency.
type countingRHS struct {
	calls int
	delay time.Duration
}

func (c *countingRHS) SetServices(svc cca.Services) error {
	return svc.AddProvidesPort(c, "rhs", RHSPortType)
}

func (c *countingRHS) Dim() int { return 2 }

func (c *countingRHS) Eval(_ float64, y, ydot []float64) {
	c.calls++
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	ydot[0], ydot[1] = y[1], -y[0]
}

// TestRHSMonitorCountAndLatencyInvariants pins the proxy's measurement
// contract: the timer's call count equals the number of invocations the
// inner port actually received, and the recorded total is at least the
// inner port's real busy time (the proxy can only add overhead, never
// hide work).
func TestRHSMonitorCountAndLatencyInvariants(t *testing.T) {
	repo := NewRepository()
	inner := &countingRHS{delay: 200 * time.Microsecond}
	repo.Register("CountingRHS", func() cca.Component { return inner })
	f := cca.NewFramework(repo, nil)
	for _, inst := range [][2]string{
		{"CountingRHS", "inner"}, {"TauTimer", "tau"}, {"RHSMonitor", "monitor"},
	} {
		mustDo(t, f.Instantiate(inst[0], inst[1]))
	}
	mustDo(t, f.Connect("monitor", "inner", "inner", "rhs"))
	mustDo(t, f.Connect("monitor", "timing", "tau", "timing"))

	monComp, _ := f.Lookup("monitor")
	mon := monComp.(*RHSMonitor)
	if mon.Dim() != 2 {
		t.Fatal("Dim not delegated")
	}
	const n = 10
	y, ydot := []float64{1, 0}, make([]float64, 2)
	for i := 0; i < n; i++ {
		mon.Eval(0, y, ydot)
	}
	if inner.calls != n {
		t.Errorf("inner saw %d calls, want %d", inner.calls, n)
	}
	tauComp, _ := f.Lookup("tau")
	sum := tauComp.(*TauTimer).Summary()
	if len(sum) != 1 || sum[0].Calls != n {
		t.Fatalf("summary = %+v, want %d monitored calls", sum, n)
	}
	if minBusy := float64(n) * 0.0001; sum[0].Seconds < minBusy {
		t.Errorf("recorded %.6fs < inner busy time %.6fs", sum[0].Seconds, minBusy)
	}
	if ydot[0] != 0 || ydot[1] != -1 {
		t.Errorf("proxy altered the result: %v", ydot)
	}
}

// TestPatchRHSMonitorRegionInvariants checks the capability probe and
// count bookkeeping of the patch proxy: SupportsRegion answers for the
// inner component, and region evaluations are measured under the same
// label as whole-patch ones.
func TestPatchRHSMonitorRegionInvariants(t *testing.T) {
	repo := NewRepository()
	f := cca.NewFramework(repo, nil)
	for _, inst := range [][2]string{
		{"ThermoChemistry", "chem"}, {"DRFMComponent", "drfm"},
		{"DiffusionPhysics", "diffusion"}, {"TauTimer", "tau"},
		{"PatchRHSMonitor", "monitor"},
	} {
		mustDo(t, f.Instantiate(inst[0], inst[1]))
	}
	mustDo(t, f.Connect("diffusion", "transport", "drfm", "transport"))
	mustDo(t, f.Connect("diffusion", "chemistry", "chem", "chemistry"))
	mustDo(t, f.Connect("monitor", "inner", "diffusion", "patchRHS"))
	mustDo(t, f.Connect("monitor", "timing", "tau", "timing"))

	monComp, _ := f.Lookup("monitor")
	mon := monComp.(*PatchRHSMonitor)
	if !mon.SupportsRegion() {
		t.Fatal("DiffusionPhysics provides EvalRegion; the proxy must surface it")
	}

	chemComp, _ := f.Lookup("chem")
	mech := chemComp.(*ThermoChemistry).Mechanism()
	nsp := mech.NumSpecies()
	h := amr.NewHierarchy(amr.NewBox(0, 0, 7, 7), 2, 1, 1)
	d := field.New("phi", h, 1+nsp, 2, nil)
	pd := d.LocalPatches(0)[0]
	Y := mech.StoichiometricH2Air()
	g := pd.GrownBox()
	for j := g.Lo[1]; j <= g.Hi[1]; j++ {
		for i := g.Lo[0]; i <= g.Hi[0]; i++ {
			pd.Set(0, i, j, 400)
			for k, yk := range Y {
				pd.Set(1+k, i, j, yk)
			}
		}
	}
	out := field.NewPatchData(pd.Patch, 1+nsp, 2)
	mon.EvalPatch(pd, out, 1e-4, 1e-4)
	mon.EvalRegion(pd, out, amr.NewBox(2, 2, 5, 5), 1e-4, 1e-4)
	mon.EvalRegion(pd, out, amr.NewBox(0, 0, 3, 3), 1e-4, 1e-4)
	tauComp, _ := f.Lookup("tau")
	sum := tauComp.(*TauTimer).Summary()
	if len(sum) != 1 || sum[0].Calls != 3 {
		t.Errorf("summary = %+v, want 3 calls (1 patch + 2 regions) under one label", sum)
	}
	if sum[0].Seconds <= 0 {
		t.Errorf("no latency recorded: %+v", sum[0])
	}
}

// TestRHSMonitorSplicesInto0D rebuilds the ignition assembly with the
// TAU proxy spliced into the cvode.rhs wire and checks (a) the physics
// is unchanged and (b) every RHS invocation was measured — the paper's
// future-work instrumentation plan, executed.
func TestRHSMonitorSplicesInto0D(t *testing.T) {
	repo := NewRepository()
	f := cca.NewFramework(repo, nil)
	mustDo(t, f.SetParameter("driver", "tEnd", "1e-4"))
	mustDo(t, f.SetParameter("driver", "nOut", "4"))
	for _, inst := range [][2]string{
		{"ThermoChemistry", "chem"}, {"DPDt", "dpdt"}, {"ProblemModeler", "model"},
		{"Initializer", "init"}, {"CvodeComponent", "cvode"},
		{"StatisticsComponent", "stats"}, {"IgnitionDriver", "driver"},
		{"TauTimer", "tau"}, {"RHSMonitor", "monitor"},
	} {
		mustDo(t, f.Instantiate(inst[0], inst[1]))
	}
	wires := [][4]string{
		{"dpdt", "chemistry", "chem", "chemistry"},
		{"model", "chemistry", "chem", "chemistry"},
		{"model", "dpdt", "dpdt", "dpdt"},
		{"init", "chemistry", "chem", "chemistry"},
		// The splice: cvode -> monitor -> model.
		{"monitor", "inner", "model", "rhs"},
		{"monitor", "timing", "tau", "timing"},
		{"cvode", "rhs", "monitor", "rhs"},
		{"driver", "ic", "init", "ic"},
		{"driver", "integrator", "cvode", "integrator"},
		{"driver", "chemistry", "chem", "chemistry"},
		{"driver", "stats", "stats", "stats"},
	}
	for _, w := range wires {
		mustDo(t, f.Connect(w[0], w[1], w[2], w[3]))
	}
	mustDo(t, f.Go("driver", "go"))

	comp, _ := f.Lookup("tau")
	sum := comp.(*TauTimer).Summary()
	byName := map[string]TimingEntry{}
	for _, e := range sum {
		byName[e.Name] = e
	}
	// Two labels: the RHS evaluations and the analytic Jacobian builds
	// the monitor forwards (the kernel engine is the default, so the
	// splice must not downgrade the solver to finite differences).
	if len(sum) != 2 {
		t.Fatalf("summary = %+v", sum)
	}
	if byName["monitor"].Calls < 20 {
		t.Errorf("calls = %d, expected many RHS invocations", byName["monitor"].Calls)
	}
	if byName["monitor.jac"].Calls < 1 {
		t.Errorf("jac builds = %d, expected the forwarded analytic Jacobian to be used", byName["monitor.jac"].Calls)
	}
	// Physics unchanged vs the unmonitored assembly.
	drComp, _ := f.Lookup("driver")
	dr := drComp.(*IgnitionDriver)
	if dr.Temps[len(dr.Temps)-1] < 999 {
		t.Errorf("monitored run produced bad physics: %v", dr.Temps)
	}
}

func TestPatchRHSMonitor(t *testing.T) {
	repo := NewRepository()
	f := cca.NewFramework(repo, nil)
	for _, inst := range [][2]string{
		{"ThermoChemistry", "chem"}, {"DRFMComponent", "drfm"},
		{"DiffusionPhysics", "diffusion"}, {"TauTimer", "tau"},
		{"PatchRHSMonitor", "monitor"},
	} {
		mustDo(t, f.Instantiate(inst[0], inst[1]))
	}
	mustDo(t, f.Connect("diffusion", "transport", "drfm", "transport"))
	mustDo(t, f.Connect("diffusion", "chemistry", "chem", "chemistry"))
	mustDo(t, f.Connect("monitor", "inner", "diffusion", "patchRHS"))
	mustDo(t, f.Connect("monitor", "timing", "tau", "timing"))

	monComp, _ := f.Lookup("monitor")
	mon := monComp.(*PatchRHSMonitor)
	h := amr.NewHierarchy(amr.NewBox(0, 0, 7, 7), 2, 1, 1)
	chemComp, _ := f.Lookup("chem")
	nsp := chemComp.(*ThermoChemistry).Mechanism().NumSpecies()
	d := field.New("phi", h, 1+nsp, 2, nil)
	pd := d.LocalPatches(0)[0]
	Y := chemComp.(*ThermoChemistry).Mechanism().StoichiometricH2Air()
	g := pd.GrownBox()
	for j := g.Lo[1]; j <= g.Hi[1]; j++ {
		for i := g.Lo[0]; i <= g.Hi[0]; i++ {
			pd.Set(0, i, j, 400)
			for k, yk := range Y {
				pd.Set(1+k, i, j, yk)
			}
		}
	}
	out := field.NewPatchData(pd.Patch, 1+nsp, 2)
	mon.EvalPatch(pd, out, 1e-4, 1e-4)
	mon.EvalPatch(pd, out, 1e-4, 1e-4)
	tauComp, _ := f.Lookup("tau")
	sum := tauComp.(*TauTimer).Summary()
	if len(sum) != 1 || sum[0].Calls != 2 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestBalancerComponentPolicies(t *testing.T) {
	for _, policy := range []string{"greedy", "sfc", "unknown"} {
		f := cca.NewFramework(NewRepository(), nil)
		mustDo(t, f.SetParameter("bal", "policy", policy))
		mustDo(t, f.Instantiate("BalancerComponent", "bal"))
		comp, _ := f.Lookup("bal")
		bc := comp.(*BalancerComponent)
		want := policy
		if policy == "unknown" {
			want = "greedy"
		}
		if bc.PolicyName() != want {
			t.Errorf("policy %q resolved to %q", policy, bc.PolicyName())
		}
		boxes := []amr.Box{amr.NewBox(0, 0, 7, 7), amr.NewBox(8, 0, 15, 7)}
		owners := bc.Assign(boxes, 0, 2, nil)
		if len(owners) != 2 {
			t.Errorf("owners = %v", owners)
		}
	}
}

// TestGrACEUsesWiredBalancer checks the future-work wiring: a mesh
// regrid consults the connected balancer component.
func TestGrACEUsesWiredBalancer(t *testing.T) {
	f := harness(t, func(f *cca.Framework) {
		mustDo(t, f.SetParameter("grace", "nx", "32"))
		mustDo(t, f.SetParameter("grace", "ny", "32"))
		mustDo(t, f.SetParameter("grace", "maxLevels", "2"))
		mustDo(t, f.SetParameter("bal", "policy", "sfc"))
		mustDo(t, f.Instantiate("GrACEComponent", "grace"))
		mustDo(t, f.Instantiate("BalancerComponent", "bal"))
		mustDo(t, f.Connect("grace", "balancer", "bal", "balancer"))
	})
	comp, _ := f.Lookup("grace")
	gc := comp.(*GrACEComponent)
	gc.Declare("phi", 1, 2)
	flags := amr.NewFlagField(gc.Hierarchy().LevelDomain(0))
	flags.SetBox(amr.NewBox(4, 4, 27, 27))
	gc.Regrid([]*amr.FlagField{flags}, amr.RegridOptions{})
	h := gc.Hierarchy()
	if h.NumLevels() != 2 {
		t.Fatalf("levels = %d", h.NumLevels())
	}
	if _, ok := h.Balancer.(BalancerPort); !ok {
		t.Errorf("hierarchy balancer = %T, want the wired component", h.Balancer)
	}
}
