package components

import (
	"strings"
	"testing"

	"ccahydro/internal/amr"
	"ccahydro/internal/cca"
	"ccahydro/internal/field"
)

func TestTauTimerSummary(t *testing.T) {
	f := harness(t, func(f *cca.Framework) {
		mustDo(t, f.Instantiate("TauTimer", "tau"))
	})
	comp, _ := f.Lookup("tau")
	tt := comp.(*TauTimer)
	tt.Record("slow", 2)
	tt.Record("slow", 1)
	tt.Record("fast", 0.1)
	tt.Time("timed", func() {})
	sum := tt.Summary()
	if len(sum) != 3 {
		t.Fatalf("entries = %d", len(sum))
	}
	if sum[0].Name != "slow" || sum[0].Calls != 2 || sum[0].Seconds != 3 {
		t.Errorf("top entry = %+v", sum[0])
	}
	var b strings.Builder
	tt.WriteReport(&b)
	if !strings.Contains(b.String(), "slow") || !strings.Contains(b.String(), "timed") {
		t.Errorf("report missing timers:\n%s", b.String())
	}
}

// TestRHSMonitorSplicesInto0D rebuilds the ignition assembly with the
// TAU proxy spliced into the cvode.rhs wire and checks (a) the physics
// is unchanged and (b) every RHS invocation was measured — the paper's
// future-work instrumentation plan, executed.
func TestRHSMonitorSplicesInto0D(t *testing.T) {
	repo := NewRepository()
	f := cca.NewFramework(repo, nil)
	mustDo(t, f.SetParameter("driver", "tEnd", "1e-4"))
	mustDo(t, f.SetParameter("driver", "nOut", "4"))
	for _, inst := range [][2]string{
		{"ThermoChemistry", "chem"}, {"DPDt", "dpdt"}, {"ProblemModeler", "model"},
		{"Initializer", "init"}, {"CvodeComponent", "cvode"},
		{"StatisticsComponent", "stats"}, {"IgnitionDriver", "driver"},
		{"TauTimer", "tau"}, {"RHSMonitor", "monitor"},
	} {
		mustDo(t, f.Instantiate(inst[0], inst[1]))
	}
	wires := [][4]string{
		{"dpdt", "chemistry", "chem", "chemistry"},
		{"model", "chemistry", "chem", "chemistry"},
		{"model", "dpdt", "dpdt", "dpdt"},
		{"init", "chemistry", "chem", "chemistry"},
		// The splice: cvode -> monitor -> model.
		{"monitor", "inner", "model", "rhs"},
		{"monitor", "timing", "tau", "timing"},
		{"cvode", "rhs", "monitor", "rhs"},
		{"driver", "ic", "init", "ic"},
		{"driver", "integrator", "cvode", "integrator"},
		{"driver", "chemistry", "chem", "chemistry"},
		{"driver", "stats", "stats", "stats"},
	}
	for _, w := range wires {
		mustDo(t, f.Connect(w[0], w[1], w[2], w[3]))
	}
	mustDo(t, f.Go("driver", "go"))

	comp, _ := f.Lookup("tau")
	sum := comp.(*TauTimer).Summary()
	if len(sum) != 1 || sum[0].Name != "monitor" {
		t.Fatalf("summary = %+v", sum)
	}
	if sum[0].Calls < 20 {
		t.Errorf("calls = %d, expected many RHS invocations", sum[0].Calls)
	}
	// Physics unchanged vs the unmonitored assembly.
	drComp, _ := f.Lookup("driver")
	dr := drComp.(*IgnitionDriver)
	if dr.Temps[len(dr.Temps)-1] < 999 {
		t.Errorf("monitored run produced bad physics: %v", dr.Temps)
	}
}

func TestPatchRHSMonitor(t *testing.T) {
	repo := NewRepository()
	f := cca.NewFramework(repo, nil)
	for _, inst := range [][2]string{
		{"ThermoChemistry", "chem"}, {"DRFMComponent", "drfm"},
		{"DiffusionPhysics", "diffusion"}, {"TauTimer", "tau"},
		{"PatchRHSMonitor", "monitor"},
	} {
		mustDo(t, f.Instantiate(inst[0], inst[1]))
	}
	mustDo(t, f.Connect("diffusion", "transport", "drfm", "transport"))
	mustDo(t, f.Connect("diffusion", "chemistry", "chem", "chemistry"))
	mustDo(t, f.Connect("monitor", "inner", "diffusion", "patchRHS"))
	mustDo(t, f.Connect("monitor", "timing", "tau", "timing"))

	monComp, _ := f.Lookup("monitor")
	mon := monComp.(*PatchRHSMonitor)
	h := amr.NewHierarchy(amr.NewBox(0, 0, 7, 7), 2, 1, 1)
	chemComp, _ := f.Lookup("chem")
	nsp := chemComp.(*ThermoChemistry).Mechanism().NumSpecies()
	d := field.New("phi", h, 1+nsp, 2, nil)
	pd := d.LocalPatches(0)[0]
	Y := chemComp.(*ThermoChemistry).Mechanism().StoichiometricH2Air()
	g := pd.GrownBox()
	for j := g.Lo[1]; j <= g.Hi[1]; j++ {
		for i := g.Lo[0]; i <= g.Hi[0]; i++ {
			pd.Set(0, i, j, 400)
			for k, yk := range Y {
				pd.Set(1+k, i, j, yk)
			}
		}
	}
	out := field.NewPatchData(pd.Patch, 1+nsp, 2)
	mon.EvalPatch(pd, out, 1e-4, 1e-4)
	mon.EvalPatch(pd, out, 1e-4, 1e-4)
	tauComp, _ := f.Lookup("tau")
	sum := tauComp.(*TauTimer).Summary()
	if len(sum) != 1 || sum[0].Calls != 2 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestBalancerComponentPolicies(t *testing.T) {
	for _, policy := range []string{"greedy", "sfc", "unknown"} {
		f := cca.NewFramework(NewRepository(), nil)
		mustDo(t, f.SetParameter("bal", "policy", policy))
		mustDo(t, f.Instantiate("BalancerComponent", "bal"))
		comp, _ := f.Lookup("bal")
		bc := comp.(*BalancerComponent)
		want := policy
		if policy == "unknown" {
			want = "greedy"
		}
		if bc.PolicyName() != want {
			t.Errorf("policy %q resolved to %q", policy, bc.PolicyName())
		}
		boxes := []amr.Box{amr.NewBox(0, 0, 7, 7), amr.NewBox(8, 0, 15, 7)}
		owners := bc.Assign(boxes, 0, 2, nil)
		if len(owners) != 2 {
			t.Errorf("owners = %v", owners)
		}
	}
}

// TestGrACEUsesWiredBalancer checks the future-work wiring: a mesh
// regrid consults the connected balancer component.
func TestGrACEUsesWiredBalancer(t *testing.T) {
	f := harness(t, func(f *cca.Framework) {
		mustDo(t, f.SetParameter("grace", "nx", "32"))
		mustDo(t, f.SetParameter("grace", "ny", "32"))
		mustDo(t, f.SetParameter("grace", "maxLevels", "2"))
		mustDo(t, f.SetParameter("bal", "policy", "sfc"))
		mustDo(t, f.Instantiate("GrACEComponent", "grace"))
		mustDo(t, f.Instantiate("BalancerComponent", "bal"))
		mustDo(t, f.Connect("grace", "balancer", "bal", "balancer"))
	})
	comp, _ := f.Lookup("grace")
	gc := comp.(*GrACEComponent)
	gc.Declare("phi", 1, 2)
	flags := amr.NewFlagField(gc.Hierarchy().LevelDomain(0))
	flags.SetBox(amr.NewBox(4, 4, 27, 27))
	gc.Regrid([]*amr.FlagField{flags}, amr.RegridOptions{})
	h := gc.Hierarchy()
	if h.NumLevels() != 2 {
		t.Fatalf("levels = %d", h.NumLevels())
	}
	if _, ok := h.Balancer.(BalancerPort); !ok {
		t.Errorf("hierarchy balancer = %T, want the wired component", h.Balancer)
	}
}
