package components

import (
	"math"

	"ccahydro/internal/cca"
	"ccahydro/internal/euler"
)

// KelvinHelmholtzIC sets up a double shear layer for the classic
// Kelvin–Helmholtz instability: a dense band in the middle third of the
// domain streaming against the outer gas, with a small sinusoidal
// transverse velocity perturbation to seed the roll-up. Units are
// nondimensional (outer gas rho=1, p=1); the band density comes from
// the GasProperties database ("densityRatio"). Parameters:
//
//	shearU      velocity jump across each layer (default 0.5)
//	thickness   shear-layer thickness as a fraction of Ly (default 0.05)
//	perturbAmp  transverse perturbation amplitude (default 0.01)
//	modes       perturbation wavenumber across Lx (default 2)
type KelvinHelmholtzIC struct {
	svc cca.Services
}

// SetServices implements cca.Component.
func (kh *KelvinHelmholtzIC) SetServices(svc cca.Services) error {
	kh.svc = svc
	if err := svc.RegisterUsesPort("gasProperties", KeyValuePortType); err != nil {
		return err
	}
	return svc.AddProvidesPort(kh, "ic", ICFieldPortType)
}

// Impose implements ICFieldPort on the conserved field.
func (kh *KelvinHelmholtzIC) Impose(mesh MeshPort, name string) {
	gp, err := kh.svc.GetPort("gasProperties")
	if err != nil {
		panic(err)
	}
	kh.svc.ReleasePort("gasProperties")
	db := gp.(KeyValuePort)
	gamma, _ := db.Value("gamma")
	if gamma == 0 {
		gamma = euler.AirGamma
	}
	ratio, ok := db.Value("densityRatio")
	if !ok {
		ratio = 3.0
	}
	params := kh.svc.Parameters()
	shearU := params.GetFloat("shearU", 0.5)
	delta := params.GetFloat("thickness", 0.05)
	amp := params.GetFloat("perturbAmp", 0.01)
	modes := float64(params.GetInt("modes", 2))

	g := euler.Gas{Gamma: gamma}
	d := mesh.Field(name)
	h := d.Hierarchy()
	for l := 0; l < h.NumLevels(); l++ {
		dx, dy := mesh.Spacing(l)
		LX := dx * float64(h.LevelDomain(l).Hi[0]+1)
		LY := dy * float64(h.LevelDomain(l).Hi[1]+1)
		for _, pd := range d.LocalPatches(l) {
			gb := pd.GrownBox()
			for j := gb.Lo[1]; j <= gb.Hi[1]; j++ {
				for i := gb.Lo[0]; i <= gb.Hi[0]; i++ {
					fx := (float64(i) + 0.5) * dx / LX
					fy := (float64(j) + 0.5) * dy / LY
					// s ramps 0 -> 1 -> 0 across the two shear layers at
					// fy = 1/4 and fy = 3/4.
					s := 0.5 * (math.Tanh((fy-0.25)/delta) - math.Tanh((fy-0.75)/delta))
					w := euler.Primitive{
						Rho: 1 + (ratio-1)*s,
						U:   shearU * (s - 0.5),
						V: amp * math.Sin(2*math.Pi*modes*fx) *
							(math.Exp(-sq((fy-0.25)/delta)) + math.Exp(-sq((fy-0.75)/delta))),
						P:    1,
						Zeta: s,
					}
					u := g.ToConserved(w)
					for k := 0; k < euler.NumComp; k++ {
						pd.Set(k, i, j, u[k])
					}
				}
			}
		}
	}
}

func sq(x float64) float64 { return x * x }

// RichtmyerMeshkovIC sets up the Richtmyer–Meshkov problem: a
// rightward-moving Mach-M shock (strength and gamma from the
// GasProperties database) about to strike a sinusoidally corrugated
// interface between light and heavy gas ("densityRatio"). The
// impulsive acceleration inverts and grows the corrugation — the
// single-shot cousin of Rayleigh–Taylor. Parameters:
//
//	interfaceX  mean interface position as a fraction of Lx (default 0.55)
//	amplitude   corrugation amplitude as a fraction of Lx (default 0.05)
//	modes       corrugation wavenumber across Ly (default 3)
//	shockX      initial shock position fraction (default 0.25)
type RichtmyerMeshkovIC struct {
	svc cca.Services
}

// SetServices implements cca.Component.
func (rm *RichtmyerMeshkovIC) SetServices(svc cca.Services) error {
	rm.svc = svc
	if err := svc.RegisterUsesPort("gasProperties", KeyValuePortType); err != nil {
		return err
	}
	return svc.AddProvidesPort(rm, "ic", ICFieldPortType)
}

// Impose implements ICFieldPort on the conserved field.
func (rm *RichtmyerMeshkovIC) Impose(mesh MeshPort, name string) {
	gp, err := rm.svc.GetPort("gasProperties")
	if err != nil {
		panic(err)
	}
	rm.svc.ReleasePort("gasProperties")
	db := gp.(KeyValuePort)
	gamma, _ := db.Value("gamma")
	if gamma == 0 {
		gamma = euler.AirGamma
	}
	ratio, ok := db.Value("densityRatio")
	if !ok {
		ratio = 3.0
	}
	mach, ok := db.Value("mach")
	if !ok {
		mach = 1.5
	}
	params := rm.svc.Parameters()
	ifaceX := params.GetFloat("interfaceX", 0.55)
	amp := params.GetFloat("amplitude", 0.05)
	modes := float64(params.GetInt("modes", 3))
	shockX := params.GetFloat("shockX", 0.25)

	g := euler.Gas{Gamma: gamma}
	light := euler.Primitive{Rho: 1, P: 1, Zeta: 0}
	heavy := euler.Primitive{Rho: ratio, P: 1, Zeta: 1}
	post := PostShockState(gamma, mach, light.Rho, light.P)

	d := mesh.Field(name)
	h := d.Hierarchy()
	for l := 0; l < h.NumLevels(); l++ {
		dx, dy := mesh.Spacing(l)
		LX := dx * float64(h.LevelDomain(l).Hi[0]+1)
		LY := dy * float64(h.LevelDomain(l).Hi[1]+1)
		for _, pd := range d.LocalPatches(l) {
			gb := pd.GrownBox()
			for j := gb.Lo[1]; j <= gb.Hi[1]; j++ {
				for i := gb.Lo[0]; i <= gb.Hi[0]; i++ {
					x := (float64(i) + 0.5) * dx
					y := (float64(j) + 0.5) * dy
					xi := ifaceX*LX + amp*LX*math.Cos(2*math.Pi*modes*y/LY)
					var w euler.Primitive
					switch {
					case x < shockX*LX:
						w = post
					case x < xi:
						w = light
					default:
						w = heavy
					}
					u := g.ToConserved(w)
					for k := 0; k < euler.NumComp; k++ {
						pd.Set(k, i, j, u[k])
					}
				}
			}
		}
	}
}
