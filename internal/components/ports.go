// Package components implements the paper's CCA components: the
// GrACEComponent mesh/data manager, the chemistry and transport
// wrappers (ThermoChemistry, DRFMComponent), the integrators
// (CvodeComponent, ExplicitIntegrator, ExplicitIntegratorRK2), the
// per-problem adaptors (problemModeler, dPdt, ImplicitIntegrator,
// InviscidFlux), initial and boundary condition components, and the
// drivers that assemble the 0D ignition, 2D reaction–diffusion, and
// 2D shock–interface applications.
//
// Port interfaces are defined here; their type strings follow the
// paper's taxonomy in Sec. 4 (MeshPort and friends).
package components

import (
	"ccahydro/internal/amr"
	"ccahydro/internal/chem"
	"ccahydro/internal/ckpt"
	"ccahydro/internal/cvode"
	"ccahydro/internal/euler"
	"ccahydro/internal/exec"
	"ccahydro/internal/field"
)

// Port type strings. Connections require exact matches.
const (
	MeshPortType            = "samr.MeshPort"
	DataPortType            = "samr.DataObjectPort"
	BCPortType              = "samr.BoundaryConditionPort"
	ICFieldPortType         = "samr.InitialConditionPort"
	RegridPortType          = "samr.RegridPort"
	StatsPortType           = "util.StatisticsPort"
	KeyValuePortType        = "db.KeyValuePort"
	RHSPortType             = "ode.RHSPort"
	ImplicitIntegratorType  = "ode.ImplicitIntegratorPort"
	SpectralRadiusPortType  = "ode.SpectralRadiusPort"
	ChemistryPortType       = "chem.SourceTermPort"
	DPDtPortType            = "chem.DPDtPort"
	ICStatePortType         = "chem.InitialStatePort"
	TransportPortType       = "transport.PropertiesPort"
	PatchRHSPortType        = "samr.PatchRHSPort"
	ExplicitIntegratorType  = "samr.ExplicitIntegratorPort"
	CellChemistryPortType   = "samr.CellChemistryPort"
	FluxPortType            = "hydro.FluxPort"
	StatesPortType          = "hydro.StatesPort"
	CharacteristicsPortType = "hydro.CharacteristicsPort"
	ProlongRestrictPortType = "samr.ProlongRestrictPort"
	ExecutionPortType       = "exec.ExecutionPort"
	CheckpointPortType      = "io.CheckpointPort"
)

// MeshPort is the paper's type (a) port: geometric manipulation of the
// domain, declaration of fields, and domain-decomposition queries. The
// GrACEComponent provides it.
type MeshPort interface {
	Hierarchy() *amr.Hierarchy
	// Declare creates (or returns the existing) named DataObject with
	// the given shape over the current hierarchy.
	Declare(name string, ncomp, ghost int) *field.DataObject
	// Field returns a declared DataObject, or nil.
	Field(name string) *field.DataObject
	// Regrid rebuilds the hierarchy from flags and remaps every
	// declared field onto it.
	Regrid(flags []*amr.FlagField, opt amr.RegridOptions)
	// Spacing returns the physical mesh spacing on a level.
	Spacing(level int) (dx, dy float64)
}

// DataPort is the abstract Data Object interface (paper type (b)):
// movement/copying of data between patches, packing/unpacking around
// message passing.
type DataPort interface {
	ExchangeGhosts(name string, level int)
	FillCoarseFineGhosts(name string, level int)
	Restrict(name string, level int)
	ProlongNewLevel(name string, level int)
}

// BCPort applies physical boundary conditions patch by patch.
type BCPort interface {
	Apply(name string, level int)
}

// ICFieldPort imposes an initial condition on a declared field.
type ICFieldPort interface {
	Impose(mesh MeshPort, name string)
}

// RegridPort estimates errors and triggers hierarchy rebuilds.
type RegridPort interface {
	// EstimateAndRegrid flags high-gradient regions of the named field
	// and regrids; returns true if the hierarchy changed.
	EstimateAndRegrid(mesh MeshPort, name string) bool
}

// StatsPort collects scalar diagnostics (the paper's
// StatisticsComponent). Providers must be safe for concurrent use:
// drivers record from the SCMD loop while monitors and exporters read.
type StatsPort interface {
	// Record appends value to the named series.
	Record(key string, value float64)
	// Get returns a copy of the named series (nil if absent): callers
	// own the slice and may retain or mutate it freely while recording
	// continues.
	Get(key string) []float64
	// Keys returns the recorded series names in sorted order, so
	// iteration over a snapshot is deterministic across runs and ranks.
	Keys() []string
}

// KeyValuePort is the Database subsystem: key-value pairs mapping
// property names to numbers.
type KeyValuePort interface {
	SetValue(key string, v float64)
	Value(key string) (float64, bool)
}

// RHSPort evaluates an ODE right-hand side over a state vector (paper
// type (e): ports that accept vectors).
type RHSPort interface {
	Dim() int
	Eval(t float64, y, ydot []float64)
}

// JacobianRHSPort is an optional extension of RHSPort: providers whose
// chemistry has a generated kernel can hand the integrator an analytic
// Jacobian, replacing the finite-difference sweep (Dim+1 RHS
// evaluations per build) with one closed-form evaluation. Integrator
// components probe for it with a type assertion on the wire.
type JacobianRHSPort interface {
	// JacFn returns a fresh evaluator filling the row-major Dim x Dim
	// Jacobian df/dy, or nil when no analytic form is available for the
	// current configuration (callers then keep the FD fallback). Each
	// call returns an independent closure with private scratch, so
	// per-worker solvers may evaluate theirs concurrently.
	JacFn() cvode.Jac
}

// ImplicitIntegratorPort advances a vector of variables (the paper's
// Implicit Integration subsystem). The integrator pulls its RHS from
// its connected RHSPort.
type ImplicitIntegratorPort interface {
	// IntegrateTo advances y in place from t0 to t1 and reports solver
	// statistics.
	IntegrateTo(t0, t1 float64, y []float64) (cvode.Stats, error)
}

// SpectralRadiusPort bounds the dominant eigenvalue of a patch operator
// so the explicit integrator can size its stable step (the paper's
// MaxDiffCoeffEvaluator).
type SpectralRadiusPort interface {
	// MaxEigen returns an upper bound on the spectral radius of the
	// explicit operator over the whole hierarchy.
	MaxEigen(mesh MeshPort, name string) float64
}

// ChemistryPort exposes chemical source terms and the mechanism — the
// ThermoChemistry component's main port.
type ChemistryPort interface {
	Mechanism() *chem.Mechanism
	// ConstPressure fills dY and returns dT/dt at fixed pressure.
	ConstPressure(T, P float64, Y, dY []float64) float64
	// ConstVolume fills dY and returns dT/dt at fixed density.
	ConstVolume(T, rho float64, Y, dY []float64) float64
	// Kernel returns the generated kernel backing the source terms, or
	// nil when the provider runs the interpreted path. Adaptors use it
	// to build analytic Jacobians consistent with the RHS they wrap.
	Kernel() chem.Kernel
}

// DPDtPort computes the rigid-vessel pressure derivative (the paper's
// dPdt component).
type DPDtPort interface {
	DPDt(rho, T, dTdt float64, Y, dYdt []float64) float64
}

// ICStatePort supplies the 0D initial state (the paper's Initializer).
type ICStatePort interface {
	InitialState() (T, P float64, Y []float64)
}

// TransportPort evaluates transport properties (the DRFMComponent).
type TransportPort interface {
	// Properties fills D (mixture-averaged diffusivities) and returns
	// conductivity and density at (T, P, Y). X is caller scratch.
	Properties(T, P float64, Y, X, D []float64) (lambda, rho float64)
	// MaxDiffusivity returns an upper bound on max(D_i, alpha) at the
	// state, for stability control.
	MaxDiffusivity(T, P float64, Y []float64) float64
}

// PatchRHSPort evaluates a PDE right-hand side one patch at a time
// (paper type (d): ports that accept an array from a patch).
type PatchRHSPort interface {
	// EvalPatch writes dPhi/dt into out over the interior of pd.
	EvalPatch(pd, out *field.PatchData, dx, dy float64)
}

// RegionRHSPort is an optional extension of PatchRHSPort: the same
// evaluation restricted to a sub-box of the patch interior, cell-for-
// cell identical to EvalPatch over that box. Drivers that overlap ghost
// exchange with compute probe for it: interior cells (which never read
// ghosts) are evaluated while messages are in flight, boundary strips
// after the exchange completes. Providers must guarantee that splitting
// the interior into disjoint regions reproduces EvalPatch bit for bit.
type RegionRHSPort interface {
	// EvalRegion writes dPhi/dt into out over region, a sub-box of pd's
	// interior, reading pd only within region grown by the stencil.
	EvalRegion(pd, out *field.PatchData, region amr.Box, dx, dy float64)
}

// ExplicitIntegratorPort advances a set of Data Objects over a time
// step (paper type (c): ports that accept arrays of Data Objects and
// act on them in a synchronized manner).
type ExplicitIntegratorPort interface {
	// AdvanceLevel advances the named field on a level from t0 to t1.
	AdvanceLevel(mesh MeshPort, name string, level int, t0, t1 float64) error
}

// CellChemistryPort advances the stiff chemistry in every cell of every
// patch (the paper's ImplicitIntegrator adaptor, which "calls on the
// Implicit Integration subsystem for all cells and all patches").
type CellChemistryPort interface {
	AdvanceChemistry(mesh MeshPort, name string, level int, dt float64) (cells int, err error)
}

// MultiLevelChemistryPort is the optional extension of a cellChemistry
// wire that advances the cells of *all* hierarchy levels in one
// flattened pool epoch instead of one fork/join per level — per-cell
// integrations are independent across levels (dt is the same
// everywhere under operator splitting), so the per-level barriers buy
// nothing and starve workers on small fine levels. Proxy components
// (iCellChem) implement it by delegation and report through
// SupportsMultiLevel whether the component behind the wire does too.
type MultiLevelChemistryPort interface {
	AdvanceChemistryLevels(mesh MeshPort, name string, dt float64) (cells int, err error)
}

// FluxPort computes an interface flux from reconstructed left/right
// states — the seam where GodunovFlux and EFMFlux interchange.
type FluxPort interface {
	Flux(g euler.Gas, l, r euler.Primitive) euler.Conserved
}

// StatesPort reconstructs limited left/right states (the paper's
// States component).
type StatesPort interface {
	// Pair returns the face states between cells (i-1,j)-(i,j) (dir 0)
	// or (i,j-1)-(i,j) (dir 1).
	Pair(g euler.Gas, pd *field.PatchData, i, j, dir int) (euler.Primitive, euler.Primitive)
}

// CharacteristicsPort reports characteristic speeds for time-step
// control (the paper's CharacteristicQuantities component).
type CharacteristicsPort interface {
	StableDt(mesh MeshPort, name string, level int) float64
}

// ExecutionPort hands out the worker pool driving patch- and
// cell-parallel loops. Components declare an optional "exec" uses port;
// when it is left unconnected they fall back to the process-wide
// default pool (width GOMAXPROCS), so standard paper assemblies need no
// extra wiring. Connecting an ExecutionComponent with the "workers"
// parameter pins the width — SCMD rank-parallel runs set it to 1 so
// rank goroutines are the only parallelism.
type ExecutionPort interface {
	Pool() *exec.Pool
}

// WorkerIntegratorPort is an optional extension of an implicit
// integrator provider: per-worker integrator instances so cell
// integrations can proceed concurrently. CvodeComponent implements it.
type WorkerIntegratorPort interface {
	// WorkerIntegrator returns a private integrator for worker slot w of
	// a pool of the given width. Instances are created on first use and
	// reused across calls with the same width.
	WorkerIntegrator(w, width int) ImplicitIntegratorPort
}

// ProlongRestrictPort performs the cell-centered interpolations between
// levels (the paper's ProlongRestrict component).
type ProlongRestrictPort interface {
	Prolong(mesh MeshPort, name string, level int)
	Restrict(mesh MeshPort, name string, level int)
	FillCoarseFine(mesh MeshPort, name string, level int)
}

// CheckpointPort is the drivers' window into the checkpoint subsystem
// (FLASH's IO unit / Cactus's checkpoint thorn, as a CCA port). Drivers
// declare an optional "checkpoint" uses port; when unconnected, runs
// behave exactly as before.
type CheckpointPort interface {
	// Restore loads the configured checkpoint if one was requested.
	// It returns (nil, nil) when no restore is configured — a cold
	// start. driver names the calling driver; a checkpoint written by a
	// different driver is rejected.
	Restore(driver string) (*ckpt.Meta, error)
	// SaveIfDue writes a checkpoint when the step cadence says so. meta
	// carries the driver's phase (step just completed, simulation time,
	// counters, series); the mesh state is captured from the wired mesh.
	SaveIfDue(meta ckpt.Meta) error
	// Flush blocks until all in-flight checkpoint writes are durable
	// and returns the first write error.
	Flush() error
}

// CounterSource is an optional capability of solver components whose
// cumulative statistics must survive a checkpoint/restore cycle (the
// CVODE step/RHS/Jacobian/Newton totals feeding Table 4). Probed by
// the checkpointing drivers with a type assertion on the wire.
type CounterSource interface {
	// Counters returns the solver's cumulative statistics by name.
	Counters() map[string]float64
	// RestoreCounters reinstates previously checkpointed statistics.
	RestoreCounters(map[string]float64)
}
