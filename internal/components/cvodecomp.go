package components

import (
	"sync"

	"ccahydro/internal/cca"
	"ccahydro/internal/cvode"
)

// CvodeComponent is a thin wrapper around the BDF stiff integrator
// (paper Sec. 4.1). It pulls its right-hand side through the "rhs"
// uses port and exposes an ImplicitIntegratorPort. Tolerances come
// from the "rtol"/"atol" parameters.
type CvodeComponent struct {
	svc    cca.Services
	solver *cvode.Solver
	// rhs is fetched once; invocation is then one interface dispatch.
	// Guarded by rhsOnce: worker integrators resolve it lazily from
	// pool goroutines.
	rhs     RHSPort
	rhsOnce sync.Once
	dim     int
	rtol    float64
	atol    float64
	// accumulated stats across calls; guarded by statsMu because
	// worker integrators report from pool goroutines.
	statsMu sync.Mutex
	total   cvode.Stats
	// workers holds per-worker-slot integrator instances (see
	// WorkerIntegrator); rebuilt when the pool width changes.
	workers []*workerIntegrator
}

// SetServices implements cca.Component.
func (cc *CvodeComponent) SetServices(svc cca.Services) error {
	cc.svc = svc
	cc.rtol = svc.Parameters().GetFloat("rtol", 1e-8)
	cc.atol = svc.Parameters().GetFloat("atol", 1e-12)
	if err := svc.RegisterUsesPort("rhs", RHSPortType); err != nil {
		return err
	}
	return svc.AddProvidesPort(cc, "integrator", ImplicitIntegratorType)
}

// rhsPort fetches the connected RHS once and holds it — the CCA
// pattern: connecting ports moves an interface pointer, and a method
// invocation costs one dispatch, not a framework lookup.
func (cc *CvodeComponent) rhsPort() RHSPort {
	cc.rhsOnce.Do(func() {
		p, err := cc.svc.GetPort("rhs")
		if err != nil {
			panic(err)
		}
		cc.rhs = p.(RHSPort)
	})
	return cc.rhs
}

// ensureSolver (re)creates the solver when the RHS dimension changes.
func (cc *CvodeComponent) ensureSolver() {
	rhs := cc.rhsPort()
	dim := rhs.Dim()
	if cc.solver != nil && dim == cc.dim {
		return
	}
	cc.dim = dim
	f := func(t float64, y, ydot []float64) { cc.rhsPort().Eval(t, y, ydot) }
	cc.solver = cvode.New(dim, f, cvode.Options{
		RelTol: cc.rtol,
		AbsTol: cc.atol,
		Jac:    cc.jacFn(),
	})
}

// jacFn probes the wired RHS for the optional JacobianRHSPort
// capability. A nil return keeps cvode's finite-difference fallback;
// each call hands out a fresh evaluator so per-worker solvers never
// share Jacobian scratch.
func (cc *CvodeComponent) jacFn() cvode.Jac {
	if jp, ok := cc.rhsPort().(JacobianRHSPort); ok {
		return jp.JacFn()
	}
	return nil
}

// IntegrateTo implements ImplicitIntegratorPort: advance y in place
// from t0 to t1.
func (cc *CvodeComponent) IntegrateTo(t0, t1 float64, y []float64) (cvode.Stats, error) {
	cc.ensureSolver()
	cc.solver.Init(t0, y)
	if err := cc.solver.Integrate(t1); err != nil {
		return cc.solver.Stats(), err
	}
	copy(y, cc.solver.Y())
	st := cc.solver.Stats()
	cc.addStats(st)
	return st, nil
}

func (cc *CvodeComponent) addStats(st cvode.Stats) {
	cc.statsMu.Lock()
	cc.total.Steps += st.Steps
	cc.total.RHSEvals += st.RHSEvals
	cc.total.JacEvals += st.JacEvals
	cc.total.JacBuildsAnalytic += st.JacBuildsAnalytic
	cc.total.JacBuildsFD += st.JacBuildsFD
	cc.total.JacReuses += st.JacReuses
	cc.total.NewtonIters += st.NewtonIters
	cc.statsMu.Unlock()
}

// TotalStats reports work accumulated over all IntegrateTo calls,
// including those made through worker integrators.
func (cc *CvodeComponent) TotalStats() cvode.Stats {
	cc.statsMu.Lock()
	defer cc.statsMu.Unlock()
	return cc.total
}

// Solver-statistic counter names used in checkpoints.
const (
	counterCvodeSteps       = "cvode.steps"
	counterCvodeRHS         = "cvode.rhs_evals"
	counterCvodeJac         = "cvode.jac_evals"
	counterCvodeJacAnalytic = "cvode.jac_analytic"
	counterCvodeJacFD       = "cvode.jac_fd"
	counterCvodeJacReuses   = "cvode.jac_reuses"
	counterCvodeNewton      = "cvode.newton_iters"
)

// Counters implements CounterSource: the cumulative solver statistics a
// checkpoint must carry so a restored run reports the same Table 4
// totals as an uninterrupted one.
func (cc *CvodeComponent) Counters() map[string]float64 {
	st := cc.TotalStats()
	return map[string]float64{
		counterCvodeSteps:       float64(st.Steps),
		counterCvodeRHS:         float64(st.RHSEvals),
		counterCvodeJac:         float64(st.JacEvals),
		counterCvodeJacAnalytic: float64(st.JacBuildsAnalytic),
		counterCvodeJacFD:       float64(st.JacBuildsFD),
		counterCvodeJacReuses:   float64(st.JacReuses),
		counterCvodeNewton:      float64(st.NewtonIters),
	}
}

// RestoreCounters implements CounterSource.
func (cc *CvodeComponent) RestoreCounters(m map[string]float64) {
	cc.statsMu.Lock()
	cc.total = cvode.Stats{
		Steps:             int(m[counterCvodeSteps]),
		RHSEvals:          int(m[counterCvodeRHS]),
		JacEvals:          int(m[counterCvodeJac]),
		JacBuildsAnalytic: int(m[counterCvodeJacAnalytic]),
		JacBuildsFD:       int(m[counterCvodeJacFD]),
		JacReuses:         int(m[counterCvodeJacReuses]),
		NewtonIters:       int(m[counterCvodeNewton]),
	}
	cc.statsMu.Unlock()
}

// workerIntegrator is one worker slot's private solver. Each slot owns
// its own cvode.Solver, so cell integrations on different workers never
// share state; Init fully resets the solver, so results are identical
// to the shared-solver serial path.
type workerIntegrator struct {
	cc     *CvodeComponent
	solver *cvode.Solver
	dim    int
}

var _ ImplicitIntegratorPort = (*workerIntegrator)(nil)

func (wi *workerIntegrator) IntegrateTo(t0, t1 float64, y []float64) (cvode.Stats, error) {
	if wi.solver == nil || wi.dim != len(y) {
		wi.dim = len(y)
		rhs := wi.cc.rhsPort()
		wi.solver = cvode.New(wi.dim, func(t float64, y, ydot []float64) { rhs.Eval(t, y, ydot) },
			cvode.Options{RelTol: wi.cc.rtol, AbsTol: wi.cc.atol, Jac: wi.cc.jacFn()})
	}
	wi.solver.Init(t0, y)
	if err := wi.solver.Integrate(t1); err != nil {
		return wi.solver.Stats(), err
	}
	copy(y, wi.solver.Y())
	st := wi.solver.Stats()
	wi.cc.addStats(st)
	return st, nil
}

// WorkerIntegrator implements WorkerIntegratorPort: a private
// integrator per worker slot so per-cell chemistry can fan out across a
// pool. Call it serially (before launching the parallel loop);
// instances persist across calls with the same width.
func (cc *CvodeComponent) WorkerIntegrator(w, width int) ImplicitIntegratorPort {
	if len(cc.workers) != width {
		cc.workers = make([]*workerIntegrator, width)
	}
	if cc.workers[w] == nil {
		cc.workers[w] = &workerIntegrator{cc: cc}
	}
	return cc.workers[w]
}
