package components

import (
	"ccahydro/internal/cca"
	"ccahydro/internal/chem"
	"ccahydro/internal/field"
	"ccahydro/internal/transport"
)

// DRFMComponent wraps the transport-property package (the paper wraps
// the Fortran77 DRFM library the same way): mixture-averaged diffusion
// coefficients and conductivity through a TransportPort. The "mech"
// parameter must match the ThermoChemistry instance it serves.
type DRFMComponent struct {
	model *transport.Model
}

// SetServices implements cca.Component.
func (dc *DRFMComponent) SetServices(svc cca.Services) error {
	name := svc.Parameters().GetString("mech", "h2air")
	m, err := chem.ByName(name)
	if err != nil {
		return err
	}
	dc.model = transport.New(m)
	return svc.AddProvidesPort(dc, "transport", TransportPortType)
}

// Properties implements TransportPort.
func (dc *DRFMComponent) Properties(T, P float64, Y, X, D []float64) (float64, float64) {
	return dc.model.Evaluate(T, P, Y, X, D)
}

// MaxDiffusivity implements TransportPort: max over species
// diffusivities and thermal diffusivity at the state.
func (dc *DRFMComponent) MaxDiffusivity(T, P float64, Y []float64) float64 {
	mech := dc.model.Mechanism()
	n := mech.NumSpecies()
	X := make([]float64, n)
	D := make([]float64, n)
	lam, rho := dc.model.Evaluate(T, P, Y, X, D)
	maxD := lam / (rho * mech.CpMass(T, Y))
	for _, d := range D {
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}

// DiffusionPhysics evaluates the diffusive transport source term
//
//	K ∇·(B ∇Φ),  K = (1/ρ){1/cp, 1, ..., 1},  B = {λ, ρD_1, ..., ρD_n}
//
// patch by patch (paper Eq. 3), with face-centered coefficients taken
// as arithmetic means of cell values. Field layout: [T, Y_0..Y_{n-1}];
// pressure is the constant "P" parameter (open-domain burning).
type DiffusionPhysics struct {
	svc cca.Services
	p0  float64

	// Per-call scratch, sized on first use.
	nsp        int
	xs, ds     []float64
	lamF, rhoF []float64 // per-cell lambda and rho caches for a row? (kept simple)
}

// SetServices implements cca.Component.
func (dp *DiffusionPhysics) SetServices(svc cca.Services) error {
	dp.svc = svc
	dp.p0 = svc.Parameters().GetFloat("P", chem.PAtm)
	if err := svc.RegisterUsesPort("transport", TransportPortType); err != nil {
		return err
	}
	if err := svc.RegisterUsesPort("chemistry", ChemistryPortType); err != nil {
		return err
	}
	return svc.AddProvidesPort(dp, "patchRHS", PatchRHSPortType)
}

func (dp *DiffusionPhysics) ports() (TransportPort, ChemistryPort) {
	tp, err := dp.svc.GetPort("transport")
	if err != nil {
		panic(err)
	}
	dp.svc.ReleasePort("transport")
	cp, err := dp.svc.GetPort("chemistry")
	if err != nil {
		panic(err)
	}
	dp.svc.ReleasePort("chemistry")
	return tp.(TransportPort), cp.(ChemistryPort)
}

// cellProps evaluates (lambda, rho*D_i, rho, cp) at a cell.
type cellProps struct {
	lam  float64
	rhoD []float64
	rho  float64
	cp   float64
}

// EvalPatch implements PatchRHSPort. pd holds [T, Y...] with ghosts
// filled; out receives dPhi/dt on the interior.
func (dp *DiffusionPhysics) EvalPatch(pd, out *field.PatchData, dx, dy float64) {
	tp, cp := dp.ports()
	mech := cp.Mechanism()
	nsp := mech.NumSpecies()
	if dp.nsp != nsp {
		dp.nsp = nsp
		dp.xs = make([]float64, nsp)
		dp.ds = make([]float64, nsp)
	}
	b := pd.Interior()
	g := b.Grow(1)

	// Evaluate properties on the interior grown by one (the stencil
	// support), caching by cell.
	nxg, nyg := g.Size()
	props := make([]cellProps, nxg*nyg)
	idx := func(i, j int) int { return (j-g.Lo[1])*nxg + (i - g.Lo[0]) }
	Y := make([]float64, nsp)
	for j := g.Lo[1]; j <= g.Hi[1]; j++ {
		for i := g.Lo[0]; i <= g.Hi[0]; i++ {
			T := pd.At(0, i, j)
			if T < 150 {
				T = 150
			}
			for k := 0; k < nsp; k++ {
				Y[k] = pd.At(1+k, i, j)
			}
			chem.NormalizeY(Y)
			lam, rho := tp.Properties(T, dp.p0, Y, dp.xs, dp.ds)
			pr := cellProps{lam: lam, rho: rho, cp: mech.CpMass(T, Y), rhoD: make([]float64, nsp)}
			for k := 0; k < nsp; k++ {
				pr.rhoD[k] = rho * dp.ds[k]
			}
			props[idx(i, j)] = pr
		}
	}

	invDx2 := 1 / (dx * dx)
	invDy2 := 1 / (dy * dy)
	for j := b.Lo[1]; j <= b.Hi[1]; j++ {
		for i := b.Lo[0]; i <= b.Hi[0]; i++ {
			pc := &props[idx(i, j)]
			pe := &props[idx(i+1, j)]
			pw := &props[idx(i-1, j)]
			pn := &props[idx(i, j+1)]
			ps := &props[idx(i, j-1)]

			// Temperature: (1/(rho cp)) ∇·(λ∇T).
			tC := pd.At(0, i, j)
			div := (0.5*(pe.lam+pc.lam)*(pd.At(0, i+1, j)-tC)-
				0.5*(pc.lam+pw.lam)*(tC-pd.At(0, i-1, j)))*invDx2 +
				(0.5*(pn.lam+pc.lam)*(pd.At(0, i, j+1)-tC)-
					0.5*(pc.lam+ps.lam)*(tC-pd.At(0, i, j-1)))*invDy2
			out.Set(0, i, j, div/(pc.rho*pc.cp))

			// Species: (1/rho) ∇·(rho D_k ∇Y_k).
			for k := 0; k < nsp; k++ {
				yC := pd.At(1+k, i, j)
				divK := (0.5*(pe.rhoD[k]+pc.rhoD[k])*(pd.At(1+k, i+1, j)-yC)-
					0.5*(pc.rhoD[k]+pw.rhoD[k])*(yC-pd.At(1+k, i-1, j)))*invDx2 +
					(0.5*(pn.rhoD[k]+pc.rhoD[k])*(pd.At(1+k, i, j+1)-yC)-
						0.5*(pc.rhoD[k]+ps.rhoD[k])*(yC-pd.At(1+k, i, j-1)))*invDy2
				out.Set(1+k, i, j, divK/pc.rho)
			}
		}
	}
}

// MaxDiffCoeffEvaluator scans the field for the largest diffusion
// coefficient so the explicit integrator can bound the spectral radius
// of the discrete diffusion operator (paper Sec. 4.2).
type MaxDiffCoeffEvaluator struct {
	svc cca.Services
	p0  float64
}

// SetServices implements cca.Component.
func (me *MaxDiffCoeffEvaluator) SetServices(svc cca.Services) error {
	me.svc = svc
	me.p0 = svc.Parameters().GetFloat("P", chem.PAtm)
	if err := svc.RegisterUsesPort("transport", TransportPortType); err != nil {
		return err
	}
	if err := svc.RegisterUsesPort("chemistry", ChemistryPortType); err != nil {
		return err
	}
	return svc.AddProvidesPort(me, "maxEigen", SpectralRadiusPortType)
}

// MaxEigen implements SpectralRadiusPort: rho(J) <= 4 Dmax (1/dx^2 +
// 1/dy^2) for the 5-point diffusion stencil, maximized over levels.
// Sampling every 4th cell keeps the scan cheap; Dmax varies smoothly.
// In an SCMD cohort the result is allreduced so every rank agrees.
func (me *MaxDiffCoeffEvaluator) MaxEigen(mesh MeshPort, name string) float64 {
	tp, err := me.svc.GetPort("transport")
	if err != nil {
		panic(err)
	}
	me.svc.ReleasePort("transport")
	cp, err := me.svc.GetPort("chemistry")
	if err != nil {
		panic(err)
	}
	me.svc.ReleasePort("chemistry")
	mech := cp.(ChemistryPort).Mechanism()
	nsp := mech.NumSpecies()
	Y := make([]float64, nsp)

	d := mesh.Field(name)
	h := d.Hierarchy()
	var maxEig float64
	for l := 0; l < h.NumLevels(); l++ {
		dx, dy := mesh.Spacing(l)
		geom := 4 * (1/(dx*dx) + 1/(dy*dy))
		for _, pd := range d.LocalPatches(l) {
			b := pd.Interior()
			for j := b.Lo[1]; j <= b.Hi[1]; j += 4 {
				for i := b.Lo[0]; i <= b.Hi[0]; i += 4 {
					T := pd.At(0, i, j)
					if T < 150 {
						T = 150
					}
					for k := 0; k < nsp; k++ {
						Y[k] = pd.At(1+k, i, j)
					}
					chem.NormalizeY(Y)
					dmax := tp.(TransportPort).MaxDiffusivity(T, me.p0, Y)
					if e := dmax * geom; e > maxEig {
						maxEig = e
					}
				}
			}
		}
	}
	if comm := me.svc.Comm(); comm != nil && comm.Size() > 1 {
		maxEig = comm.AllreduceScalar(mpiOpMax, maxEig)
	}
	return maxEig
}
