package components

import (
	"sync"

	"ccahydro/internal/amr"
	"ccahydro/internal/cca"
	"ccahydro/internal/chem"
	"ccahydro/internal/field"
	"ccahydro/internal/transport"
)

// DRFMComponent wraps the transport-property package (the paper wraps
// the Fortran77 DRFM library the same way): mixture-averaged diffusion
// coefficients and conductivity through a TransportPort. The "mech"
// parameter must match the ThermoChemistry instance it serves.
type DRFMComponent struct {
	model *transport.Model
	// scratch recycles the X/D work vectors of MaxDiffusivity, which is
	// called per cell per CFL check — previously two fresh slices per
	// call. A sync.Pool keeps the port safe for concurrent callers.
	scratch sync.Pool
}

// drfmScratch is one caller's mole-fraction/diffusivity work pair.
type drfmScratch struct{ X, D []float64 }

// SetServices implements cca.Component.
func (dc *DRFMComponent) SetServices(svc cca.Services) error {
	name := svc.Parameters().GetString("mech", "h2air")
	m, err := chem.ByName(name)
	if err != nil {
		return err
	}
	dc.model = transport.New(m)
	n := m.NumSpecies()
	dc.scratch.New = func() any {
		return &drfmScratch{X: make([]float64, n), D: make([]float64, n)}
	}
	return svc.AddProvidesPort(dc, "transport", TransportPortType)
}

// Properties implements TransportPort.
func (dc *DRFMComponent) Properties(T, P float64, Y, X, D []float64) (float64, float64) {
	return dc.model.Evaluate(T, P, Y, X, D)
}

// MaxDiffusivity implements TransportPort: max over species
// diffusivities and thermal diffusivity at the state.
func (dc *DRFMComponent) MaxDiffusivity(T, P float64, Y []float64) float64 {
	mech := dc.model.Mechanism()
	ws := dc.scratch.Get().(*drfmScratch)
	lam, rho := dc.model.Evaluate(T, P, Y, ws.X, ws.D)
	maxD := lam / (rho * mech.CpMass(T, Y))
	for _, d := range ws.D {
		if d > maxD {
			maxD = d
		}
	}
	dc.scratch.Put(ws)
	return maxD
}

// DiffusionPhysics evaluates the diffusive transport source term
//
//	K ∇·(B ∇Φ),  K = (1/ρ){1/cp, 1, ..., 1},  B = {λ, ρD_1, ..., ρD_n}
//
// patch by patch (paper Eq. 3), with face-centered coefficients taken
// as arithmetic means of cell values. Field layout: [T, Y_0..Y_{n-1}];
// pressure is the constant "P" parameter (open-domain burning).
type DiffusionPhysics struct {
	svc cca.Services
	p0  float64

	// Ports resolve once (CCA: a connection is an interface value; a
	// call is one dispatch) so concurrent EvalPatch calls skip the
	// framework entirely.
	portsOnce sync.Once
	tp        TransportPort
	cp        ChemistryPort

	// scratch recycles one patch evaluation's work arrays. EvalPatch is
	// reachable from several concurrent jobs (patch fan-out, and nested
	// loops under it), so the component must not hold mutable state —
	// each call draws a private scratch from the pool.
	scratch sync.Pool // of *diffScratch
}

// diffScratch is one EvalPatch call's working set: composition vectors
// plus the per-cell property cache, with all rhoD slices carved out of
// one backing array (the seed allocated a fresh slice per cell).
type diffScratch struct {
	xs, ds, Y []float64
	props     []cellProps
	rhoD      []float64
}

func (ds *diffScratch) size(nsp, ncells int) {
	if len(ds.xs) != nsp {
		ds.xs = make([]float64, nsp)
		ds.ds = make([]float64, nsp)
		ds.Y = make([]float64, nsp)
	}
	if cap(ds.props) < ncells {
		ds.props = make([]cellProps, ncells)
		ds.rhoD = make([]float64, ncells*nsp)
	}
	ds.props = ds.props[:ncells]
	for c := 0; c < ncells; c++ {
		ds.props[c].rhoD = ds.rhoD[c*nsp : (c+1)*nsp]
	}
}

// SetServices implements cca.Component.
func (dp *DiffusionPhysics) SetServices(svc cca.Services) error {
	dp.svc = svc
	dp.p0 = svc.Parameters().GetFloat("P", chem.PAtm)
	if err := svc.RegisterUsesPort("transport", TransportPortType); err != nil {
		return err
	}
	if err := svc.RegisterUsesPort("chemistry", ChemistryPortType); err != nil {
		return err
	}
	return svc.AddProvidesPort(dp, "patchRHS", PatchRHSPortType)
}

func (dp *DiffusionPhysics) ports() (TransportPort, ChemistryPort) {
	dp.portsOnce.Do(func() {
		tp, err := dp.svc.GetPort("transport")
		if err != nil {
			panic(err)
		}
		dp.svc.ReleasePort("transport")
		cp, err := dp.svc.GetPort("chemistry")
		if err != nil {
			panic(err)
		}
		dp.svc.ReleasePort("chemistry")
		dp.tp, dp.cp = tp.(TransportPort), cp.(ChemistryPort)
	})
	return dp.tp, dp.cp
}

// cellProps evaluates (lambda, rho*D_i, rho, cp) at a cell.
type cellProps struct {
	lam  float64
	rhoD []float64
	rho  float64
	cp   float64
}

// EvalPatch implements PatchRHSPort. pd holds [T, Y...] with ghosts
// filled; out receives dPhi/dt on the interior. Safe for concurrent
// calls on different patches.
func (dp *DiffusionPhysics) EvalPatch(pd, out *field.PatchData, dx, dy float64) {
	dp.EvalRegion(pd, out, pd.Interior(), dx, dy)
}

// EvalRegion implements RegionRHSPort: EvalPatch restricted to a
// sub-box of the interior. Properties are evaluated over the region
// grown by one cell (the stencil support); per-cell arithmetic is
// identical to a full-patch evaluation, so any disjoint partition of
// the interior reproduces EvalPatch bit for bit. Safe for concurrent
// calls on disjoint regions.
func (dp *DiffusionPhysics) EvalRegion(pd, out *field.PatchData, region amr.Box, dx, dy float64) {
	if region.Empty() {
		return
	}
	tp, cp := dp.ports()
	mech := cp.Mechanism()
	nsp := mech.NumSpecies()
	b := region
	g := b.Grow(1)

	// Evaluate properties on the interior grown by one (the stencil
	// support), caching by cell.
	nxg, nyg := g.Size()
	ws, _ := dp.scratch.Get().(*diffScratch)
	if ws == nil {
		ws = &diffScratch{}
	}
	ws.size(nsp, nxg*nyg)
	props, Y := ws.props, ws.Y
	idx := func(i, j int) int { return (j-g.Lo[1])*nxg + (i - g.Lo[0]) }
	for j := g.Lo[1]; j <= g.Hi[1]; j++ {
		for i := g.Lo[0]; i <= g.Hi[0]; i++ {
			T := pd.At(0, i, j)
			if T < 150 {
				T = 150
			}
			for k := 0; k < nsp; k++ {
				Y[k] = pd.At(1+k, i, j)
			}
			chem.NormalizeY(Y)
			lam, rho := tp.Properties(T, dp.p0, Y, ws.xs, ws.ds)
			pr := &props[idx(i, j)]
			pr.lam, pr.rho, pr.cp = lam, rho, mech.CpMass(T, Y)
			for k := 0; k < nsp; k++ {
				pr.rhoD[k] = rho * ws.ds[k]
			}
		}
	}

	invDx2 := 1 / (dx * dx)
	invDy2 := 1 / (dy * dy)
	for j := b.Lo[1]; j <= b.Hi[1]; j++ {
		for i := b.Lo[0]; i <= b.Hi[0]; i++ {
			pc := &props[idx(i, j)]
			pe := &props[idx(i+1, j)]
			pw := &props[idx(i-1, j)]
			pn := &props[idx(i, j+1)]
			ps := &props[idx(i, j-1)]

			// Temperature: (1/(rho cp)) ∇·(λ∇T).
			tC := pd.At(0, i, j)
			div := (0.5*(pe.lam+pc.lam)*(pd.At(0, i+1, j)-tC)-
				0.5*(pc.lam+pw.lam)*(tC-pd.At(0, i-1, j)))*invDx2 +
				(0.5*(pn.lam+pc.lam)*(pd.At(0, i, j+1)-tC)-
					0.5*(pc.lam+ps.lam)*(tC-pd.At(0, i, j-1)))*invDy2
			out.Set(0, i, j, div/(pc.rho*pc.cp))

			// Species: (1/rho) ∇·(rho D_k ∇Y_k).
			for k := 0; k < nsp; k++ {
				yC := pd.At(1+k, i, j)
				divK := (0.5*(pe.rhoD[k]+pc.rhoD[k])*(pd.At(1+k, i+1, j)-yC)-
					0.5*(pc.rhoD[k]+pw.rhoD[k])*(yC-pd.At(1+k, i-1, j)))*invDx2 +
					(0.5*(pn.rhoD[k]+pc.rhoD[k])*(pd.At(1+k, i, j+1)-yC)-
						0.5*(pc.rhoD[k]+ps.rhoD[k])*(yC-pd.At(1+k, i, j-1)))*invDy2
				out.Set(1+k, i, j, divK/pc.rho)
			}
		}
	}
	dp.scratch.Put(ws)
}

// MaxDiffCoeffEvaluator scans the field for the largest diffusion
// coefficient so the explicit integrator can bound the spectral radius
// of the discrete diffusion operator (paper Sec. 4.2).
type MaxDiffCoeffEvaluator struct {
	svc cca.Services
	p0  float64
}

// SetServices implements cca.Component.
func (me *MaxDiffCoeffEvaluator) SetServices(svc cca.Services) error {
	me.svc = svc
	me.p0 = svc.Parameters().GetFloat("P", chem.PAtm)
	if err := svc.RegisterUsesPort("transport", TransportPortType); err != nil {
		return err
	}
	if err := svc.RegisterUsesPort("chemistry", ChemistryPortType); err != nil {
		return err
	}
	if err := registerExecPort(svc); err != nil {
		return err
	}
	return svc.AddProvidesPort(me, "maxEigen", SpectralRadiusPortType)
}

// MaxEigen implements SpectralRadiusPort: rho(J) <= 4 Dmax (1/dx^2 +
// 1/dy^2) for the 5-point diffusion stencil, maximized over levels.
// Sampling every 4th cell keeps the scan cheap; Dmax varies smoothly.
// In an SCMD cohort the result is allreduced so every rank agrees.
func (me *MaxDiffCoeffEvaluator) MaxEigen(mesh MeshPort, name string) float64 {
	tp, err := me.svc.GetPort("transport")
	if err != nil {
		panic(err)
	}
	me.svc.ReleasePort("transport")
	cp, err := me.svc.GetPort("chemistry")
	if err != nil {
		panic(err)
	}
	me.svc.ReleasePort("chemistry")
	mech := cp.(ChemistryPort).Mechanism()
	tport := tp.(TransportPort)
	nsp := mech.NumSpecies()

	// Flatten (level, patch) pairs and fan the scans out: each patch
	// reduces to a private partial maximum (max is order-independent, so
	// the parallel fold is bit-for-bit the serial result).
	d := mesh.Field(name)
	h := d.Hierarchy()
	type scanItem struct {
		pd   *field.PatchData
		geom float64
	}
	var items []scanItem
	for l := 0; l < h.NumLevels(); l++ {
		dx, dy := mesh.Spacing(l)
		geom := 4 * (1/(dx*dx) + 1/(dy*dy))
		for _, pd := range d.LocalPatches(l) {
			items = append(items, scanItem{pd, geom})
		}
	}
	pool := optionalPool(me.svc)
	partial := make([]float64, len(items))
	ys := make([][]float64, pool.Width())
	pool.ForEach(len(items), func(w, n int) {
		Y := ys[w]
		if Y == nil {
			Y = make([]float64, nsp)
			ys[w] = Y
		}
		it := items[n]
		b := it.pd.Interior()
		var m float64
		for j := b.Lo[1]; j <= b.Hi[1]; j += 4 {
			for i := b.Lo[0]; i <= b.Hi[0]; i += 4 {
				T := it.pd.At(0, i, j)
				if T < 150 {
					T = 150
				}
				for k := 0; k < nsp; k++ {
					Y[k] = it.pd.At(1+k, i, j)
				}
				chem.NormalizeY(Y)
				dmax := tport.MaxDiffusivity(T, me.p0, Y)
				if e := dmax * it.geom; e > m {
					m = e
				}
			}
		}
		partial[n] = m
	})
	var maxEig float64
	for _, m := range partial {
		if m > maxEig {
			maxEig = m
		}
	}
	if comm := me.svc.Comm(); comm != nil && comm.Size() > 1 {
		maxEig = comm.AllreduceScalar(mpiOpMax, maxEig)
	}
	return maxEig
}
