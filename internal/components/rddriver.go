package components

import (
	"fmt"
	"strconv"
	"time"

	"ccahydro/internal/cca"
	"ccahydro/internal/ckpt"
	"ccahydro/internal/field"
	"ccahydro/internal/telemetry"
)

// rdDriverName tags checkpoints written by this driver; a restore into
// a different driver is rejected.
const rdDriverName = "rd"

// RDDriver assembles the operator-split time loop of the 2D
// reaction–diffusion flame (paper Sec. 4.2): stiff chemistry integrated
// implicitly cell by cell, diffusion integrated explicitly with RKC,
// with optional SAMR regridding between steps. Parameters:
//
//	dt           macro time step in seconds (default 1e-7, the paper's
//	             scaling-run step)
//	steps        number of macro steps (default 5, as in the paper)
//	regridEvery  regrid period in steps; 0 disables adaptivity (the
//	             paper's scaling runs turn adaptivity off)
//	splitting    "lie" (chemistry then diffusion) or "strang" (half
//	             chemistry, diffusion, half chemistry); default lie
//	field        data object name (default "phi")
//	skipChem     when true the chemistry half is skipped (diffusion-only
//	             runs for scaling studies)
type RDDriver struct {
	svc cca.Services

	// Results, readable after Go.
	StepSeconds  []float64
	CellsPerStep []int
	TMax, TMin   float64
}

// SetServices implements cca.Component.
func (dr *RDDriver) SetServices(svc cca.Services) error {
	dr.svc = svc
	for _, u := range [][2]string{
		{"mesh", MeshPortType},
		{"ic", ICFieldPortType},
		{"explicit", ExplicitIntegratorType},
		{"cellChemistry", CellChemistryPortType},
		{"regrid", RegridPortType},
		{"stats", StatsPortType},
		{"chemistry", ChemistryPortType},
		{"checkpoint", CheckpointPortType},
	} {
		if err := svc.RegisterUsesPort(u[0], u[1]); err != nil {
			return err
		}
	}
	if err := registerExecPort(svc); err != nil {
		return err
	}
	return svc.AddProvidesPort(cca.GoPort(goFunc(dr.run)), "go", cca.GoPortType)
}

func (dr *RDDriver) port(name string) cca.Port {
	p, err := dr.svc.GetPort(name)
	if err != nil {
		panic(fmt.Sprintf("RDDriver: %v", err))
	}
	dr.svc.ReleasePort(name)
	return p
}

// optionalPort returns nil when the uses port is unconnected (regrid
// and stats are optional in reduced assemblies).
func (dr *RDDriver) optionalPort(name string) cca.Port {
	p, err := dr.svc.GetPort(name)
	if err != nil {
		return nil
	}
	dr.svc.ReleasePort(name)
	return p
}

// multiLevelChem resolves the optional multi-level extension of a
// cellChemistry wire, mirroring regionRHS: proxies answer
// SupportsMultiLevel truthfully for the component behind them.
func multiLevelChem(c CellChemistryPort) MultiLevelChemistryPort {
	ml, ok := c.(MultiLevelChemistryPort)
	if !ok {
		return nil
	}
	if p, ok := c.(interface{ SupportsMultiLevel() bool }); ok && !p.SupportsMultiLevel() {
		return nil
	}
	return ml
}

func (dr *RDDriver) run() error {
	params := dr.svc.Parameters()
	dt := params.GetFloat("dt", 1e-7)
	steps := params.GetInt("steps", 5)
	regridEvery := params.GetInt("regridEvery", 0)
	splitting := params.GetString("splitting", "lie")
	name := params.GetString("field", "phi")
	skipChem := params.GetBool("skipChem", false)

	mesh := dr.port("mesh").(MeshPort)
	icPort := dr.port("ic").(ICFieldPort)
	expl := dr.port("explicit").(ExplicitIntegratorPort)
	chemPort := dr.port("chemistry").(ChemistryPort)
	var cellChem CellChemistryPort
	if p := dr.optionalPort("cellChemistry"); p != nil {
		cellChem = p.(CellChemistryPort)
	}
	var regrid RegridPort
	if p := dr.optionalPort("regrid"); p != nil {
		regrid = p.(RegridPort)
	}
	var stats StatsPort
	if p := dr.optionalPort("stats"); p != nil {
		stats = p.(StatsPort)
	}
	var ck CheckpointPort
	if p := dr.optionalPort("checkpoint"); p != nil {
		ck = p.(CheckpointPort)
	}

	// Restore (if configured) before the fresh check: a restore adopts
	// the checkpointed hierarchy and fields into the mesh, so the IC and
	// initial regrid passes below are skipped and the loop resumes at the
	// checkpointed step.
	var restored *ckpt.Meta
	if ck != nil {
		m, err := ck.Restore(rdDriverName)
		if err != nil {
			return err
		}
		restored = m
	}

	nsp := chemPort.Mechanism().NumSpecies()
	fresh := mesh.Field(name) == nil
	mesh.Declare(name, 1+nsp, 2)
	if fresh {
		// First Go on this framework: impose the IC and establish the
		// initial hierarchy (alternate flagging and re-imposing so fine
		// levels start from exact data). Subsequent Go calls continue
		// the run from the current field, so a driver can be fired
		// repeatedly to produce time-series frames (Fig 3).
		icPort.Impose(mesh, name)
		if regrid != nil && regridEvery > 0 {
			for pass := 0; pass < mesh.Hierarchy().MaxLevels-1; pass++ {
				if !regrid.EstimateAndRegrid(mesh, name) {
					break
				}
				icPort.Impose(mesh, name)
			}
		}
	}

	chemStep := func(frac float64) error {
		if skipChem || cellChem == nil {
			return nil
		}
		// One flattened epoch over all levels' cells when the wire
		// supports it (bit-for-bit the per-level sequence: each cell's
		// integration is independent and dt is level-uniform); the
		// per-level loop is the fallback for foreign providers.
		if ml := multiLevelChem(cellChem); ml != nil {
			_, err := ml.AdvanceChemistryLevels(mesh, name, dt*frac)
			return err
		}
		h := mesh.Hierarchy()
		for l := 0; l < h.NumLevels(); l++ {
			if _, err := cellChem.AdvanceChemistry(mesh, name, l, dt*frac); err != nil {
				return err
			}
		}
		return nil
	}
	diffStep := func(t0, t1 float64) error {
		h := mesh.Hierarchy()
		for l := 0; l < h.NumLevels(); l++ {
			if err := expl.AdvanceLevel(mesh, name, l, t0, t1); err != nil {
				return err
			}
		}
		// Make coarse data consistent with fine (restriction).
		d := mesh.Field(name)
		for l := h.NumLevels() - 1; l >= 1; l-- {
			d.RestrictLevel(l)
		}
		return nil
	}

	obsSession := dr.svc.Observability()
	tel := dr.svc.Telemetry()
	t := 0.0
	step0 := 0
	if restored != nil {
		t = restored.Time
		step0 = restored.Step + 1
		if cs, ok := cellChem.(CounterSource); ok && restored.Counters != nil {
			cs.RestoreCounters(restored.Counters)
		}
		// Reinstate the per-step history (it rides in Meta.Series), and
		// replay it into the statistics port so a resumed run's series —
		// including the live /series stream — covers the whole job, not
		// just the steps after the restore point.
		dr.StepSeconds = append([]float64(nil), restored.Series["stepSeconds"]...)
		dr.CellsPerStep = dr.CellsPerStep[:0]
		for _, v := range restored.Series["cells"] {
			dr.CellsPerStep = append(dr.CellsPerStep, int(v))
		}
		if stats != nil {
			for i := range dr.StepSeconds {
				stats.Record("stepSeconds", dr.StepSeconds[i])
				if i < len(dr.CellsPerStep) {
					stats.Record("cells", float64(dr.CellsPerStep[i]))
				}
			}
		}
	}
	for step := step0; step < steps; step++ {
		if c := dr.svc.Comm(); c != nil {
			c.NoteStep(step)
		}
		tel.NoteStep(step)
		var stepSpan func()
		if obsSession != nil {
			stepSpan = obsSession.Span("driver", "rd.step "+strconv.Itoa(step))
		}
		start := time.Now()
		switch splitting {
		case "strang":
			if err := chemStep(0.5); err != nil {
				return err
			}
			if err := diffStep(t, t+dt); err != nil {
				return err
			}
			if err := chemStep(0.5); err != nil {
				return err
			}
		default: // lie
			if err := chemStep(1.0); err != nil {
				return err
			}
			if err := diffStep(t, t+dt); err != nil {
				return err
			}
		}
		t += dt
		elapsed := time.Since(start).Seconds()
		dr.StepSeconds = append(dr.StepSeconds, elapsed)
		dr.CellsPerStep = append(dr.CellsPerStep, mesh.Hierarchy().TotalCells())
		if stats != nil {
			stats.Record("stepSeconds", elapsed)
			stats.Record("cells", float64(mesh.Hierarchy().TotalCells()))
		}
		if regrid != nil && regridEvery > 0 && (step+1)%regridEvery == 0 {
			if regrid.EstimateAndRegrid(mesh, name) {
				tel.Emit(telemetry.EvRegrid, step, "")
			}
		}
		// Checkpoint last, after the regrid: a continuation computes step
		// step+1 from exactly the state this iteration hands it. The
		// per-step series ride along so a restore reinstates them.
		if ck != nil {
			cells := make([]float64, len(dr.CellsPerStep))
			for i, c := range dr.CellsPerStep {
				cells[i] = float64(c)
			}
			meta := ckpt.Meta{Driver: rdDriverName, Step: step, Time: t,
				Series: map[string][]float64{"stepSeconds": dr.StepSeconds, "cells": cells}}
			if cs, ok := cellChem.(CounterSource); ok {
				meta.Counters = cs.Counters()
			}
			if err := ck.SaveIfDue(meta); err != nil {
				return err
			}
		}
		if stepSpan != nil {
			stepSpan()
		}
	}
	if ck != nil {
		if err := ck.Flush(); err != nil {
			return err
		}
	}

	// Final temperature extrema (rank-local; experiments reduce them).
	// Patch scans fan out over the pool; min/max folds are
	// order-independent, so the result matches the serial scan exactly.
	d := mesh.Field(name)
	dr.TMax, dr.TMin = -1e300, 1e300
	h := mesh.Hierarchy()
	var scan []*field.PatchData
	for l := 0; l < h.NumLevels(); l++ {
		scan = append(scan, d.LocalPatches(l)...)
	}
	his := make([]float64, len(scan))
	los := make([]float64, len(scan))
	optionalPool(dr.svc).ForEach(len(scan), func(_, n int) {
		pd := scan[n]
		b := pd.Interior()
		hi, lo := -1e300, 1e300
		for j := b.Lo[1]; j <= b.Hi[1]; j++ {
			for i := b.Lo[0]; i <= b.Hi[0]; i++ {
				v := pd.At(0, i, j)
				if v > hi {
					hi = v
				}
				if v < lo {
					lo = v
				}
			}
		}
		his[n], los[n] = hi, lo
	})
	for n := range scan {
		if his[n] > dr.TMax {
			dr.TMax = his[n]
		}
		if los[n] < dr.TMin {
			dr.TMin = los[n]
		}
	}
	if stats != nil {
		stats.Record("Tmax", dr.TMax)
		stats.Record("Tmin", dr.TMin)
	}
	return nil
}
