package components

import (
	"ccahydro/internal/amr"
	"ccahydro/internal/exec"
	"ccahydro/internal/field"
)

// regionRHS resolves the optional region-evaluation extension of a
// patch-RHS wire. Proxy components (PatchRHSMonitor) implement
// EvalRegion by delegation and report through SupportsRegion whether
// the component actually behind the wire does too.
func regionRHS(rhs PatchRHSPort) RegionRHSPort {
	rr, ok := rhs.(RegionRHSPort)
	if !ok {
		return nil
	}
	if p, ok := rhs.(interface{ SupportsRegion() bool }); ok && !p.SupportsRegion() {
		return nil
	}
	return rr
}

// stripItem is one boundary strip of one patch in the interleaved
// post-exchange work list.
type stripItem struct {
	pi  int // index into the level's patch slice
	box amr.Box
}

// stripPlan caches a level's flattened boundary-strip work list. The
// old per-patch fan-out made each pool chunk evaluate all (≤ 4) strips
// of its patches, so a chunk holding a patch with wide strips became
// the epoch's tail while other workers idled. The plan flattens every
// patch's strips into one list and splits strips larger than
// stripSegMaxCells into segments, so the items are near-uniform and
// the pool's contiguous chunking cannot concentrate the wide strips
// into one straggler chunk (BENCH_pool's strip study measures the
// occupancy gain; a round-robin interleave by strip position was
// measured *worse* — it groups same-position, similar-width strips
// into contiguous runs). Strips are disjoint cell regions and each
// writes only its own patch's out array, so the re-partitioning is
// race-free and bit-for-bit (per-cell arithmetic does not depend on
// the worker slot).
//
// The geometry depends only on the patch list and ghost width, so the
// plan is built once per (cache entry, regrid) alongside the caller's
// level scratch and reused by every RHS stage.
type stripPlan struct {
	patches []*field.PatchData
	ghost   int
	items   []stripItem
	inner   []amr.Box // Interior().Grow(-ghost) per patch, for the interior pass
}

// stripSegMaxCells caps boundary-strip work items: strips above it are
// split so no single item can dominate an epoch chunk. Boundary work
// is ~10% of a level's cells, so the extra per-segment EvalRegion
// calls cost far less than the tail they remove.
const stripSegMaxCells = 8

// ensure (re)builds the plan when the patch list or ghost width it was
// built for changed. Callers embed the plan in their per-level caches,
// which are invalidated on regrid by patch identity, so in steady state
// this is a cheap comparison.
func (sp *stripPlan) ensure(patches []*field.PatchData, ghost int) {
	if sp.ghost == ghost && samePatches(sp.patches, patches) {
		return
	}
	sp.patches = patches
	sp.ghost = ghost
	sp.items = sp.items[:0]
	sp.inner = sp.inner[:0]
	for i, pd := range patches {
		inner := pd.Interior().Grow(-ghost)
		sp.inner = append(sp.inner, inner)
		for _, s := range pd.Interior().Subtract(inner) {
			for _, seg := range amr.SplitLargeBoxes([]amr.Box{s}, stripSegMaxCells) {
				sp.items = append(sp.items, stripItem{pi: i, box: seg})
			}
		}
	}
}

// evalLevelOverlapped runs the ghost protocol for one level and writes
// the RHS of every local patch into out, overlapping the same-level
// exchange with compute when the RHS wire supports region evaluation:
//
//	preExchange              coarse-level BCs + coarse–fine fill
//	ExchangeGhostsStart      seam messages go into flight
//	evaluate inner regions   interior.Grow(-Ghost): reads never leave
//	                         the interior (stencil ≤ Ghost)
//	Finish                   drain the exchange
//	applyBC                  physical BC fills read seam ghosts, so
//	                         they must follow Finish
//	evaluate boundary strips one pool epoch over the interleaved
//	                         cross-patch strip plan
//
// The split is engaged uniformly (serial and parallel, any pool width)
// so every configuration exercises identical arithmetic; RegionRHSPort
// providers guarantee disjoint regions reproduce EvalPatch bit for
// bit. Without region support the call degrades to the blocking order:
// exchange, BCs, full-patch evaluation.
func evalLevelOverlapped(d *field.DataObject, level int, patches, out []*field.PatchData,
	dx, dy float64, pool *exec.Pool, rhs PatchRHSPort, sp *stripPlan, preExchange, applyBC func()) {
	preExchange()
	rr := regionRHS(rhs)
	if rr == nil {
		d.ExchangeGhosts(level)
		applyBC()
		pool.ForEach(len(patches), func(_, i int) {
			rhs.EvalPatch(patches[i], out[i], dx, dy)
		})
		return
	}
	sp.ensure(patches, d.Ghost)
	ex := d.ExchangeGhostsStart(level)
	pool.ForEach(len(patches), func(_, i int) {
		rr.EvalRegion(patches[i], out[i], sp.inner[i], dx, dy)
	})
	ex.Finish()
	applyBC()
	pool.ForEach(len(sp.items), func(_, k int) {
		it := sp.items[k]
		rr.EvalRegion(patches[it.pi], out[it.pi], it.box, dx, dy)
	})
}
