package components

import (
	"ccahydro/internal/exec"
	"ccahydro/internal/field"
)

// regionRHS resolves the optional region-evaluation extension of a
// patch-RHS wire. Proxy components (PatchRHSMonitor) implement
// EvalRegion by delegation and report through SupportsRegion whether
// the component actually behind the wire does too.
func regionRHS(rhs PatchRHSPort) RegionRHSPort {
	rr, ok := rhs.(RegionRHSPort)
	if !ok {
		return nil
	}
	if p, ok := rhs.(interface{ SupportsRegion() bool }); ok && !p.SupportsRegion() {
		return nil
	}
	return rr
}

// evalLevelOverlapped runs the ghost protocol for one level and writes
// the RHS of every local patch into out, overlapping the same-level
// exchange with compute when the RHS wire supports region evaluation:
//
//	preExchange              coarse-level BCs + coarse–fine fill
//	ExchangeGhostsStart      seam messages go into flight
//	evaluate inner regions   interior.Grow(-Ghost): reads never leave
//	                         the interior (stencil ≤ Ghost)
//	Finish                   drain the exchange
//	applyBC                  physical BC fills read seam ghosts, so
//	                         they must follow Finish
//	evaluate boundary strips the ≤ 4 interior strips within Ghost of
//	                         a patch edge
//
// The split is engaged uniformly (serial and parallel, any pool width)
// so every configuration exercises identical arithmetic; RegionRHSPort
// providers guarantee disjoint regions reproduce EvalPatch bit for
// bit. Without region support the call degrades to the blocking order:
// exchange, BCs, full-patch evaluation.
func evalLevelOverlapped(d *field.DataObject, level int, patches, out []*field.PatchData,
	dx, dy float64, pool *exec.Pool, rhs PatchRHSPort, preExchange, applyBC func()) {
	preExchange()
	rr := regionRHS(rhs)
	if rr == nil {
		d.ExchangeGhosts(level)
		applyBC()
		pool.ForEach(len(patches), func(_, i int) {
			rhs.EvalPatch(patches[i], out[i], dx, dy)
		})
		return
	}
	ex := d.ExchangeGhostsStart(level)
	pool.ForEach(len(patches), func(_, i int) {
		rr.EvalRegion(patches[i], out[i], patches[i].Interior().Grow(-d.Ghost), dx, dy)
	})
	ex.Finish()
	applyBC()
	pool.ForEach(len(patches), func(_, i int) {
		inner := patches[i].Interior().Grow(-d.Ghost)
		for _, strip := range patches[i].Interior().Subtract(inner) {
			rr.EvalRegion(patches[i], out[i], strip, dx, dy)
		}
	})
}
