package components

import (
	"fmt"

	"ccahydro/internal/cca"
	"ccahydro/internal/field"
	"ccahydro/internal/mpi"
	"ccahydro/internal/rkc"
)

// mpiOpMax aliases the reduction op to keep diffusion.go import-light.
const mpiOpMax = mpi.OpMax

// ExplicitIntegrator is the Runge–Kutta–Chebyshev time integrator of
// the Explicit Integration subsystem: it advances a Data Object level
// over a time interval, pulling the right-hand side one patch at a
// time through its "patchRHS" uses port and bounding the stable step
// with the "maxEigen" port (paper Sec. 4.2). Parameters: "rtol",
// "atol" (RKC error control).
//
// The level's patches are flattened into one state vector per rank;
// every RHS evaluation performs the full ghost protocol (BCs,
// coarse–fine fill, exchange) so the cohort stays synchronized —
// which is why the port contract says integrators act on Data Objects
// "in a synchronized manner".
type ExplicitIntegrator struct {
	svc cca.Services
}

// SetServices implements cca.Component.
func (ei *ExplicitIntegrator) SetServices(svc cca.Services) error {
	ei.svc = svc
	if err := svc.RegisterUsesPort("patchRHS", PatchRHSPortType); err != nil {
		return err
	}
	if err := svc.RegisterUsesPort("maxEigen", SpectralRadiusPortType); err != nil {
		return err
	}
	return svc.AddProvidesPort(ei, "integrator", ExplicitIntegratorType)
}

func (ei *ExplicitIntegrator) port(name string) cca.Port {
	p, err := ei.svc.GetPort(name)
	if err != nil {
		panic(fmt.Sprintf("ExplicitIntegrator: %v", err))
	}
	ei.svc.ReleasePort(name)
	return p
}

// levelVector flattens the interiors of a level's local patches into a
// single vector and back.
type levelVector struct {
	patches []*field.PatchData
	sizes   []int
	ncomp   int
}

func newLevelVector(patches []*field.PatchData, ncomp int) *levelVector {
	lv := &levelVector{patches: patches, ncomp: ncomp}
	for _, pd := range patches {
		lv.sizes = append(lv.sizes, ncomp*pd.Interior().NumCells())
	}
	return lv
}

func (lv *levelVector) dim() int {
	n := 0
	for _, s := range lv.sizes {
		n += s
	}
	return n
}

func (lv *levelVector) gather(out []float64) {
	o := 0
	for _, pd := range lv.patches {
		b := pd.Interior()
		for c := 0; c < lv.ncomp; c++ {
			for j := b.Lo[1]; j <= b.Hi[1]; j++ {
				for i := b.Lo[0]; i <= b.Hi[0]; i++ {
					out[o] = pd.At(c, i, j)
					o++
				}
			}
		}
	}
}

func (lv *levelVector) scatter(in []float64) {
	o := 0
	for _, pd := range lv.patches {
		b := pd.Interior()
		for c := 0; c < lv.ncomp; c++ {
			for j := b.Lo[1]; j <= b.Hi[1]; j++ {
				for i := b.Lo[0]; i <= b.Hi[0]; i++ {
					pd.Set(c, i, j, in[o])
					o++
				}
			}
		}
	}
}

// AdvanceLevel implements ExplicitIntegratorPort.
func (ei *ExplicitIntegrator) AdvanceLevel(mesh MeshPort, name string, level int, t0, t1 float64) error {
	rhsPort := ei.port("patchRHS").(PatchRHSPort)
	eigPort := ei.port("maxEigen").(SpectralRadiusPort)
	d := mesh.Field(name)
	gc, isGrace := meshAsGrace(mesh)
	patches := d.LocalPatches(level)
	dx, dy := mesh.Spacing(level)
	lv := newLevelVector(patches, d.NComp)
	dim := lv.dim()
	comm := ei.svc.Comm()

	// Scratch RHS patches, one per local patch.
	rhsData := make([]*field.PatchData, len(patches))
	for i, pd := range patches {
		rhsData[i] = field.NewPatchData(pd.Patch, d.NComp, d.Ghost)
	}

	evals := 0
	f := func(_ float64, y, ydot []float64) {
		lv.scatter(y)
		if isGrace {
			gc.FillAllGhosts(name, level)
		} else {
			d.ExchangeGhosts(level)
		}
		o := 0
		for i, pd := range patches {
			rhsPort.EvalPatch(pd, rhsData[i], dx, dy)
			b := pd.Interior()
			for c := 0; c < d.NComp; c++ {
				for j := b.Lo[1]; j <= b.Hi[1]; j++ {
					for ii := b.Lo[0]; ii <= b.Hi[0]; ii++ {
						ydot[o] = rhsData[i].At(c, ii, j)
						o++
					}
				}
			}
		}
		evals++
	}

	// MaxEigen is allreduced inside the port, so the spectral radius —
	// and therefore the stage count — is identical on every rank.
	rho := func(_ float64, _ []float64) float64 {
		return eigPort.MaxEigen(mesh, name)
	}

	dt := t1 - t0
	opt := rkc.Options{
		RelTol:      ei.svc.Parameters().GetFloat("rtol", 1e-5),
		AbsTol:      ei.svc.Parameters().GetFloat("atol", 1e-8),
		InitialStep: dt,
		MaxStep:     dt,
		MaxStages:   1024,
	}
	if comm != nil && comm.Size() > 1 {
		// Combine the error norm across the cohort so every rank's
		// controller takes identical accept/reject and step decisions —
		// the collective ghost exchanges inside f then stay in lockstep.
		opt.CombineNorm = func(sumSq, n float64) (float64, float64) {
			out := comm.Allreduce(mpi.OpSum, []float64{sumSq, n})
			return out[0], out[1]
		}
	}
	s := rkc.New(dim, f, rho, opt)
	y0 := make([]float64, dim)
	lv.gather(y0)
	s.Init(t0, y0)
	if err := s.Integrate(t1); err != nil {
		return fmt.Errorf("ExplicitIntegrator level %d: %w", level, err)
	}
	lv.scatter(s.Y())
	if isGrace {
		gc.FillAllGhosts(name, level)
	} else {
		d.ExchangeGhosts(level)
	}
	return nil
}

// meshAsGrace recovers the concrete GrACE component behind a MeshPort
// when available (for the full ghost protocol).
func meshAsGrace(mesh MeshPort) (*GrACEComponent, bool) {
	gc, ok := mesh.(*GrACEComponent)
	return gc, ok
}
