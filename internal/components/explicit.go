package components

import (
	"fmt"

	"ccahydro/internal/cca"
	"ccahydro/internal/field"
	"ccahydro/internal/mpi"
	"ccahydro/internal/rkc"
)

// mpiOpMax aliases the reduction op to keep diffusion.go import-light.
const mpiOpMax = mpi.OpMax

// ExplicitIntegrator is the Runge–Kutta–Chebyshev time integrator of
// the Explicit Integration subsystem: it advances a Data Object level
// over a time interval, pulling the right-hand side one patch at a
// time through its "patchRHS" uses port and bounding the stable step
// with the "maxEigen" port (paper Sec. 4.2). Parameters: "rtol",
// "atol" (RKC error control).
//
// The level's patches are flattened into one state vector per rank;
// every RHS evaluation performs the full ghost protocol (BCs,
// coarse–fine fill, exchange) so the cohort stays synchronized —
// which is why the port contract says integrators act on Data Objects
// "in a synchronized manner".
type ExplicitIntegrator struct {
	svc cca.Services
	// cache holds per-level integration scratch (RHS patches, flat
	// vectors, the RKC solver) so repeated AdvanceLevel calls on an
	// unchanged hierarchy allocate nothing; invalidated by regrids
	// through patch-identity comparison.
	cache map[int]*eiLevelCache
}

// eiLevelCache is one level's reusable integration state.
type eiLevelCache struct {
	patches []*field.PatchData
	rhsData []*field.PatchData
	offs    []int // flat-vector offset of each patch's block
	lv      *levelVector
	solver  *rkc.Solver
	y0      []float64
	strips  stripPlan
}

// SetServices implements cca.Component.
func (ei *ExplicitIntegrator) SetServices(svc cca.Services) error {
	ei.svc = svc
	if err := svc.RegisterUsesPort("patchRHS", PatchRHSPortType); err != nil {
		return err
	}
	if err := svc.RegisterUsesPort("maxEigen", SpectralRadiusPortType); err != nil {
		return err
	}
	if err := registerExecPort(svc); err != nil {
		return err
	}
	return svc.AddProvidesPort(ei, "integrator", ExplicitIntegratorType)
}

// samePatches reports whether the cached patch list is still the live
// one (patch data pointers are stable between regrids).
func samePatches(a, b []*field.PatchData) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (ei *ExplicitIntegrator) port(name string) cca.Port {
	p, err := ei.svc.GetPort(name)
	if err != nil {
		panic(fmt.Sprintf("ExplicitIntegrator: %v", err))
	}
	ei.svc.ReleasePort(name)
	return p
}

// levelVector flattens the interiors of a level's local patches into a
// single vector and back.
type levelVector struct {
	patches []*field.PatchData
	sizes   []int
	ncomp   int
}

func newLevelVector(patches []*field.PatchData, ncomp int) *levelVector {
	lv := &levelVector{patches: patches, ncomp: ncomp}
	for _, pd := range patches {
		lv.sizes = append(lv.sizes, ncomp*pd.Interior().NumCells())
	}
	return lv
}

func (lv *levelVector) dim() int {
	n := 0
	for _, s := range lv.sizes {
		n += s
	}
	return n
}

func (lv *levelVector) gather(out []float64) {
	o := 0
	for _, pd := range lv.patches {
		b := pd.Interior()
		for c := 0; c < lv.ncomp; c++ {
			for j := b.Lo[1]; j <= b.Hi[1]; j++ {
				for i := b.Lo[0]; i <= b.Hi[0]; i++ {
					out[o] = pd.At(c, i, j)
					o++
				}
			}
		}
	}
}

func (lv *levelVector) scatter(in []float64) {
	o := 0
	for _, pd := range lv.patches {
		b := pd.Interior()
		for c := 0; c < lv.ncomp; c++ {
			for j := b.Lo[1]; j <= b.Hi[1]; j++ {
				for i := b.Lo[0]; i <= b.Hi[0]; i++ {
					pd.Set(c, i, j, in[o])
					o++
				}
			}
		}
	}
}

// scatterPatch writes patch p's block of the flat vector (starting at
// offset o) into the patch interior. Blocks are disjoint, so patches
// scatter in parallel.
func (lv *levelVector) scatterPatch(p, o int, in []float64) {
	pd := lv.patches[p]
	b := pd.Interior()
	for c := 0; c < lv.ncomp; c++ {
		for j := b.Lo[1]; j <= b.Hi[1]; j++ {
			for i := b.Lo[0]; i <= b.Hi[0]; i++ {
				pd.Set(c, i, j, in[o])
				o++
			}
		}
	}
}

// gatherFrom reads src's interior (any patch data over the same box as
// patch p) into the flat vector at offset o.
func (lv *levelVector) gatherFrom(p, o int, src *field.PatchData, out []float64) {
	b := lv.patches[p].Interior()
	for c := 0; c < lv.ncomp; c++ {
		for j := b.Lo[1]; j <= b.Hi[1]; j++ {
			for i := b.Lo[0]; i <= b.Hi[0]; i++ {
				out[o] = src.At(c, i, j)
				o++
			}
		}
	}
}

// AdvanceLevel implements ExplicitIntegratorPort. Each RHS evaluation
// performs the collective ghost protocol serially (the cohort must stay
// synchronized), then fans the independent per-patch EvalPatch calls
// and the ydot gather out over the execution pool — patches read their
// own ghost-padded arrays and write their own disjoint blocks of the
// flat vector, so the parallel sweep is race-free and, because block
// offsets are fixed, bit-for-bit identical to the serial sweep.
func (ei *ExplicitIntegrator) AdvanceLevel(mesh MeshPort, name string, level int, t0, t1 float64) error {
	o := ei.svc.Observability()
	if o != nil {
		defer o.Span("rkc", obsLevelName("rkc.advance", level))()
	}
	rhsPort := ei.port("patchRHS").(PatchRHSPort)
	eigPort := ei.port("maxEigen").(SpectralRadiusPort)
	d := mesh.Field(name)
	gc, isGrace := meshAsGrace(mesh)
	patches := d.LocalPatches(level)
	dx, dy := mesh.Spacing(level)
	comm := ei.svc.Comm()
	pool := optionalPool(ei.svc)

	if ei.cache == nil {
		ei.cache = make(map[int]*eiLevelCache)
	}
	lc := ei.cache[level]
	if lc == nil || !samePatches(lc.patches, patches) {
		lc = &eiLevelCache{patches: patches}
		lc.lv = newLevelVector(patches, d.NComp)
		lc.rhsData = make([]*field.PatchData, len(patches))
		lc.offs = make([]int, len(patches))
		o := 0
		for i, pd := range patches {
			lc.rhsData[i] = field.NewPatchData(pd.Patch, d.NComp, d.Ghost)
			lc.offs[i] = o
			o += lc.lv.sizes[i]
		}
		lc.y0 = make([]float64, lc.lv.dim())
		ei.cache[level] = lc
	}
	lv := lc.lv
	dim := lv.dim()

	// The ghost protocol splits around the exchange so interior cells are
	// evaluated while seam messages are in flight (evalLevelOverlapped):
	// the pre-exchange part is the coarse-level fill, the post part the
	// level's own physical BCs.
	preExchange := func() {
		if isGrace && level > 0 {
			gc.Apply(name, level-1)
			gc.FillCoarseFineGhosts(name, level)
		}
	}
	applyBC := func() {
		if isGrace {
			gc.Apply(name, level)
		}
	}
	f := func(_ float64, y, ydot []float64) {
		if o != nil {
			defer o.Span("rkc", obsLevelName("rkc.stage", level))()
		}
		pool.ForEach(len(patches), func(_, i int) {
			lv.scatterPatch(i, lc.offs[i], y)
		})
		evalLevelOverlapped(d, level, patches, lc.rhsData, dx, dy, pool, rhsPort,
			&lc.strips, preExchange, applyBC)
		pool.ForEach(len(patches), func(_, i int) {
			lv.gatherFrom(i, lc.offs[i], lc.rhsData[i], ydot)
		})
	}

	// MaxEigen is allreduced inside the port, so the spectral radius —
	// and therefore the stage count — is identical on every rank.
	rho := func(_ float64, _ []float64) float64 {
		return eigPort.MaxEigen(mesh, name)
	}

	dt := t1 - t0
	opt := rkc.Options{
		RelTol:      ei.svc.Parameters().GetFloat("rtol", 1e-5),
		AbsTol:      ei.svc.Parameters().GetFloat("atol", 1e-8),
		InitialStep: dt,
		MaxStep:     dt,
		MaxStages:   1024,
	}
	if comm != nil && comm.Size() > 1 {
		// Combine the error norm across the cohort so every rank's
		// controller takes identical accept/reject and step decisions —
		// the collective ghost exchanges inside f then stay in lockstep.
		opt.CombineNorm = func(sumSq, n float64) (float64, float64) {
			out := comm.Allreduce(mpi.OpSum, []float64{sumSq, n})
			return out[0], out[1]
		}
	}
	if lc.solver == nil || lc.solver.N() != dim {
		lc.solver = rkc.New(dim, f, rho, opt)
	} else {
		lc.solver.SetProblem(f, rho)
		lc.solver.Reconfigure(opt)
	}
	s := lc.solver
	lv.gather(lc.y0)
	s.Init(t0, lc.y0)
	if err := s.Integrate(t1); err != nil {
		return fmt.Errorf("ExplicitIntegrator level %d: %w", level, err)
	}
	lv.scatter(s.Y())
	if isGrace {
		gc.FillAllGhosts(name, level)
	} else {
		d.ExchangeGhosts(level)
	}
	return nil
}

// meshAsGrace recovers the concrete GrACE component behind a MeshPort
// when available (for the full ghost protocol).
func meshAsGrace(mesh MeshPort) (*GrACEComponent, bool) {
	gc, ok := mesh.(*GrACEComponent)
	return gc, ok
}
