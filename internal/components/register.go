package components

import "ccahydro/internal/cca"

// RegisterAll adds every component class to a repository under the
// names the paper's assemblies use. It is the Go substitute for the
// palette of shared-object components Ccaffeine would dlopen.
func RegisterAll(repo *cca.Repository) {
	repo.Register("ThermoChemistry", func() cca.Component { return &ThermoChemistry{} })
	repo.Register("DPDt", func() cca.Component { return &DPDt{} })
	repo.Register("ProblemModeler", func() cca.Component { return &ProblemModeler{} })
	repo.Register("Initializer", func() cca.Component { return &Initializer{} })
	repo.Register("CvodeComponent", func() cca.Component { return &CvodeComponent{} })
	repo.Register("StatisticsComponent", func() cca.Component { return &StatisticsComponent{} })
	repo.Register("IgnitionDriver", func() cca.Component { return &IgnitionDriver{} })
	repo.Register("GrACEComponent", func() cca.Component { return &GrACEComponent{} })
	repo.Register("InitialCondition", func() cca.Component { return &InitialCondition{} })
	repo.Register("DRFMComponent", func() cca.Component { return &DRFMComponent{} })
	repo.Register("DiffusionPhysics", func() cca.Component { return &DiffusionPhysics{} })
	repo.Register("MaxDiffCoeffEvaluator", func() cca.Component { return &MaxDiffCoeffEvaluator{} })
	repo.Register("ExplicitIntegrator", func() cca.Component { return &ExplicitIntegrator{} })
	repo.Register("ImplicitIntegrator", func() cca.Component { return &ImplicitIntegrator{} })
	repo.Register("ErrorEstAndRegrid", func() cca.Component { return &ErrorEstAndRegrid{} })
	repo.Register("RDDriver", func() cca.Component { return &RDDriver{} })
	repo.Register("ConicalInterfaceIC", func() cca.Component { return &ConicalInterfaceIC{} })
	repo.Register("KelvinHelmholtzIC", func() cca.Component { return &KelvinHelmholtzIC{} })
	repo.Register("RichtmyerMeshkovIC", func() cca.Component { return &RichtmyerMeshkovIC{} })
	repo.Register("States", func() cca.Component { return &States{} })
	repo.Register("GodunovFlux", func() cca.Component { return &GodunovFluxComp{} })
	repo.Register("EFMFlux", func() cca.Component { return &EFMFluxComp{} })
	repo.Register("HLLCFlux", func() cca.Component { return &HLLCFluxComp{} })
	repo.Register("InviscidFlux", func() cca.Component { return &InviscidFlux{} })
	repo.Register("CharacteristicQuantities", func() cca.Component { return &CharacteristicQuantities{} })
	repo.Register("ExplicitIntegratorRK2", func() cca.Component { return &ExplicitIntegratorRK2{} })
	repo.Register("BoundaryConditions", func() cca.Component { return &BoundaryConditions{} })
	repo.Register("GasProperties", func() cca.Component { return &GasProperties{} })
	repo.Register("ProlongRestrict", func() cca.Component { return &ProlongRestrict{} })
	repo.Register("ShockDriver", func() cca.Component { return &ShockDriver{} })
	repo.Register("TauTimer", func() cca.Component { return &TauTimer{} })
	repo.Register("RHSMonitor", func() cca.Component { return &RHSMonitor{} })
	repo.Register("PatchRHSMonitor", func() cca.Component { return &PatchRHSMonitor{} })
	repo.Register("BalancerComponent", func() cca.Component { return &BalancerComponent{} })
	repo.Register("ExecutionComponent", func() cca.Component { return &ExecutionComponent{} })
	repo.Register("CheckpointComponent", func() cca.Component { return &CheckpointComponent{} })
}

// NewRepository returns a repository with every component registered.
func NewRepository() *cca.Repository {
	repo := cca.NewRepository()
	RegisterAll(repo)
	return repo
}
