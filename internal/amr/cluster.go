package amr

// Point clustering in the Berger–Rigoutsos style: given the set of
// flagged cells on a level, produce a small set of rectangles covering
// all flags such that each rectangle is "efficient" (flagged fraction
// above a threshold). The SAMR regrid step feeds these rectangles to
// patch creation.

// FlagField marks cells of a box for refinement.
type FlagField struct {
	Box   Box
	flags []bool
}

// NewFlagField creates an all-clear flag field over box.
func NewFlagField(box Box) *FlagField {
	return &FlagField{Box: box, flags: make([]bool, box.NumCells())}
}

func (f *FlagField) index(i, j int) int {
	nx, _ := f.Box.Size()
	return (j-f.Box.Lo[1])*nx + (i - f.Box.Lo[0])
}

// Set flags cell (i, j); out-of-box sets are ignored.
func (f *FlagField) Set(i, j int) {
	if f.Box.Contains(i, j) {
		f.flags[f.index(i, j)] = true
	}
}

// Get reports whether cell (i, j) is flagged; out-of-box reads are false.
func (f *FlagField) Get(i, j int) bool {
	if !f.Box.Contains(i, j) {
		return false
	}
	return f.flags[f.index(i, j)]
}

// Count returns the number of flagged cells.
func (f *FlagField) Count() int {
	n := 0
	for _, v := range f.flags {
		if v {
			n++
		}
	}
	return n
}

// SetBox flags every cell in the intersection of b with the field.
func (f *FlagField) SetBox(b Box) {
	ov := f.Box.Intersect(b)
	for j := ov.Lo[1]; j <= ov.Hi[1]; j++ {
		for i := ov.Lo[0]; i <= ov.Hi[0]; i++ {
			f.flags[f.index(i, j)] = true
		}
	}
}

// Buffer grows every flagged region by n cells (clipped to the box),
// the usual safety margin so features cannot escape fine patches
// between regrids.
func (f *FlagField) Buffer(n int) {
	if n <= 0 {
		return
	}
	src := append([]bool(nil), f.flags...)
	nx, _ := f.Box.Size()
	for j := f.Box.Lo[1]; j <= f.Box.Hi[1]; j++ {
		for i := f.Box.Lo[0]; i <= f.Box.Hi[0]; i++ {
			if !src[(j-f.Box.Lo[1])*nx+(i-f.Box.Lo[0])] {
				continue
			}
			for dj := -n; dj <= n; dj++ {
				for di := -n; di <= n; di++ {
					f.Set(i+di, j+dj)
				}
			}
		}
	}
}

// boundingBoxOfFlags returns the tight box around flagged cells within
// region (empty box if none).
func (f *FlagField) boundingBoxOfFlags(region Box) Box {
	r := Box{Lo: [2]int{1, 1}, Hi: [2]int{0, 0}} // empty
	first := true
	ov := f.Box.Intersect(region)
	for j := ov.Lo[1]; j <= ov.Hi[1]; j++ {
		for i := ov.Lo[0]; i <= ov.Hi[0]; i++ {
			if !f.flags[f.index(i, j)] {
				continue
			}
			if first {
				r = NewBox(i, j, i, j)
				first = false
			} else {
				r = r.BoundingBox(NewBox(i, j, i, j))
			}
		}
	}
	return r
}

func (f *FlagField) countIn(region Box) int {
	n := 0
	ov := f.Box.Intersect(region)
	for j := ov.Lo[1]; j <= ov.Hi[1]; j++ {
		for i := ov.Lo[0]; i <= ov.Hi[0]; i++ {
			if f.flags[f.index(i, j)] {
				n++
			}
		}
	}
	return n
}

// ClusterOptions controls the clustering pass.
type ClusterOptions struct {
	// Efficiency is the minimum flagged fraction a produced box must
	// reach before splitting stops (Berger–Rigoutsos uses ~0.7–0.9).
	Efficiency float64
	// MaxBoxCells caps box size; oversized boxes are split regardless
	// of efficiency so patches stay distributable.
	MaxBoxCells int
	// MinWidth prevents slivers: boxes are not split below this width.
	MinWidth int
}

// DefaultClusterOptions matches common SAMR practice.
var DefaultClusterOptions = ClusterOptions{Efficiency: 0.7, MaxBoxCells: 4096, MinWidth: 4}

// Cluster covers all flagged cells with rectangles per the options. The
// algorithm is the signature-based recursive bisection of
// Berger–Rigoutsos: shrink to the bounding box, accept if efficient and
// small enough, otherwise cut at a signature hole or inflection (or
// midpoint) of the longer axis and recurse.
func Cluster(f *FlagField, opt ClusterOptions) []Box {
	if opt.Efficiency <= 0 || opt.Efficiency > 1 {
		opt.Efficiency = DefaultClusterOptions.Efficiency
	}
	if opt.MaxBoxCells <= 0 {
		opt.MaxBoxCells = DefaultClusterOptions.MaxBoxCells
	}
	if opt.MinWidth <= 0 {
		opt.MinWidth = 1
	}
	var out []Box
	var recurse func(region Box, depth int)
	recurse = func(region Box, depth int) {
		bb := f.boundingBoxOfFlags(region)
		if bb.Empty() {
			return
		}
		nFlag := f.countIn(bb)
		eff := float64(nFlag) / float64(bb.NumCells())
		nx, ny := bb.Size()
		smallEnough := bb.NumCells() <= opt.MaxBoxCells
		tooNarrow := nx <= opt.MinWidth && ny <= opt.MinWidth
		if (eff >= opt.Efficiency && smallEnough) || tooNarrow || depth > 64 {
			out = append(out, bb)
			return
		}
		// Compute signatures along the longer axis and find the best cut.
		if nx >= ny {
			cut := chooseCutX(f, bb, opt.MinWidth)
			l, r := bb.SplitX(cut)
			recurse(l, depth+1)
			recurse(r, depth+1)
		} else {
			cut := chooseCutY(f, bb, opt.MinWidth)
			b1, b2 := bb.SplitY(cut)
			recurse(b1, depth+1)
			recurse(b2, depth+1)
		}
	}
	recurse(f.Box, 0)
	return out
}

// chooseCutX picks a column index to split bb: first zero of the column
// signature, then the strongest Laplacian sign change, else midpoint.
// The cut respects minWidth on both sides.
func chooseCutX(f *FlagField, bb Box, minWidth int) int {
	nx, _ := bb.Size()
	sig := make([]int, nx)
	for j := bb.Lo[1]; j <= bb.Hi[1]; j++ {
		for i := bb.Lo[0]; i <= bb.Hi[0]; i++ {
			if f.Get(i, j) {
				sig[i-bb.Lo[0]]++
			}
		}
	}
	return chooseCut(sig, bb.Lo[0], minWidth)
}

func chooseCutY(f *FlagField, bb Box, minWidth int) int {
	_, ny := bb.Size()
	sig := make([]int, ny)
	for j := bb.Lo[1]; j <= bb.Hi[1]; j++ {
		for i := bb.Lo[0]; i <= bb.Hi[0]; i++ {
			if f.Get(i, j) {
				sig[j-bb.Lo[1]]++
			}
		}
	}
	return chooseCut(sig, bb.Lo[1], minWidth)
}

// chooseCut returns an absolute split coordinate given a signature
// array starting at lo. The returned cut c splits [lo, lo+len-1] into
// [lo, c-1] and [c, ...]; both sides keep at least minWidth entries.
func chooseCut(sig []int, lo, minWidth int) int {
	n := len(sig)
	lowest := minWidth
	highest := n - minWidth
	if lowest >= highest {
		return lo + n/2
	}
	// Zero (hole) in the signature: perfect split point.
	for c := lowest; c < highest; c++ {
		if sig[c] == 0 {
			return lo + c
		}
	}
	// Laplacian inflection: largest |Δ²| sign change.
	bestC, bestMag := -1, -1
	for c := lowest; c < highest-1; c++ {
		if c-1 < 0 || c+1 >= n {
			continue
		}
		d1 := sig[c-1] - 2*sig[c] + sig[c+1]
		var d2 int
		if c+2 < n {
			d2 = sig[c] - 2*sig[c+1] + sig[c+2]
		}
		if d1*d2 < 0 {
			mag := abs(d1 - d2)
			if mag > bestMag {
				bestMag = mag
				bestC = c + 1
			}
		}
	}
	if bestC >= 0 {
		return lo + bestC
	}
	return lo + n/2
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
