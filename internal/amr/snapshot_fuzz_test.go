package amr

import (
	"strings"
	"testing"
)

// validSnapshot returns a snapshot that round-trips through FromSnapshot.
func validSnapshot() Snapshot {
	return Snapshot{
		Domain:        NewBox(0, 0, 15, 15),
		Ratio:         2,
		MaxLevels:     3,
		NumRanks:      2,
		NestingBuffer: 1,
		Regrids:       4,
		NextID:        10,
		Patches: []PatchSnapshot{
			{ID: 0, Level: 0, Box: NewBox(0, 0, 15, 7), Owner: 0},
			{ID: 1, Level: 0, Box: NewBox(0, 8, 15, 15), Owner: 1},
			{ID: 5, Level: 1, Box: NewBox(4, 4, 19, 19), Owner: 0},
		},
	}
}

// Fuzz-style table over malformed snapshots: every corruption must come
// back as an error — never a panic, never a silently accepted hierarchy.
func TestFromSnapshotRejectsMalformed(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Snapshot)
		wantSub string
	}{
		{"zero ratio", func(s *Snapshot) { s.Ratio = 0 }, "invalid snapshot header"},
		{"negative ratio", func(s *Snapshot) { s.Ratio = -2 }, "invalid snapshot header"},
		{"zero maxLevels", func(s *Snapshot) { s.MaxLevels = 0 }, "invalid snapshot header"},
		{"zero ranks", func(s *Snapshot) { s.NumRanks = 0 }, "invalid snapshot header"},
		{"empty domain", func(s *Snapshot) { s.Domain = NewBox(5, 5, 4, 4) }, "empty domain"},
		{"inverted domain", func(s *Snapshot) { s.Domain = Box{Lo: [2]int{0, 0}, Hi: [2]int{-1, 3}} }, "empty domain"},
		{"negative nesting", func(s *Snapshot) { s.NestingBuffer = -1 }, "invalid snapshot counters"},
		{"negative regrids", func(s *Snapshot) { s.Regrids = -3 }, "invalid snapshot counters"},
		{"negative nextID", func(s *Snapshot) { s.NextID = -1 }, "invalid snapshot counters"},
		{"no patches", func(s *Snapshot) { s.Patches = nil }, "no patches"},
		{"negative patch level", func(s *Snapshot) { s.Patches[2].Level = -1 }, "negative level"},
		{"level beyond max", func(s *Snapshot) { s.Patches[2].Level = 3 }, "exceeds maxLevels"},
		{"huge level", func(s *Snapshot) { s.Patches[2].Level = 1 << 30 }, "exceeds maxLevels"},
		{"duplicate patch ID", func(s *Snapshot) { s.Patches[1].ID = 0 }, "duplicate patch ID"},
		{"negative patch ID", func(s *Snapshot) { s.Patches[2].ID = -7 }, "negative ID"},
		{"empty patch box", func(s *Snapshot) { s.Patches[0].Box = NewBox(3, 3, 2, 3) }, "empty box"},
		{"patch escapes domain", func(s *Snapshot) { s.Patches[0].Box = NewBox(0, 0, 16, 7) }, "escapes level"},
		{"fine patch escapes refined domain", func(s *Snapshot) { s.Patches[2].Box = NewBox(4, 4, 32, 19) }, "escapes level"},
		{"negative owner", func(s *Snapshot) { s.Patches[1].Owner = -1 }, "owner"},
		{"owner beyond ranks", func(s *Snapshot) { s.Patches[1].Owner = 2 }, "owner"},
		{"hole in level coverage", func(s *Snapshot) {
			// Patches only on levels 0 and 2: level 1 ends up empty.
			s.Patches[2].Level = 2
			s.Patches[2].Box = NewBox(16, 16, 31, 31)
		}, "has no patches"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("FromSnapshot panicked: %v", r)
				}
			}()
			s := validSnapshot()
			tc.mutate(&s)
			h, err := FromSnapshot(s)
			if err == nil {
				t.Fatalf("malformed snapshot accepted: %+v", h)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// The valid baseline must still round-trip after the hardening.
func TestFromSnapshotAcceptsValid(t *testing.T) {
	s := validSnapshot()
	h, err := FromSnapshot(s)
	if err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	got := h.Snapshot()
	if got.NextID != 10 || got.Regrids != 4 || len(got.Patches) != 3 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}
