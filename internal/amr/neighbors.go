package amr

import "sort"

// Generation identifies the current shape of the hierarchy: it changes
// exactly when Regrid rebuilds the levels. Communication schedules in
// package field are cached per (level, generation) and rebuilt only
// when this value moves.
func (h *Hierarchy) Generation() int { return h.Regrids }

// Neighbors returns, for each patch on the level (by slice position),
// the positions of the other patches within `ghost` cells of it — the
// pairs whose grown boxes overlap and can therefore exchange ghost
// data. The lists are sorted ascending and symmetric.
//
// A sweep over patches sorted by Box.Lo[0] prunes the all-pairs scan:
// a candidate further right than the grown box of the current patch
// cannot touch it, nor can anything after it in the sorted order.
func (lv *Level) Neighbors(ghost int) [][]int {
	n := len(lv.Patches)
	out := make([][]int, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := lv.Patches[order[a]].Box, lv.Patches[order[b]].Box
		if pa.Lo[0] != pb.Lo[0] {
			return pa.Lo[0] < pb.Lo[0]
		}
		return order[a] < order[b]
	})
	for ai := 0; ai < n; ai++ {
		a := order[ai]
		ga := lv.Patches[a].Box.Grow(ghost)
		for bi := ai + 1; bi < n; bi++ {
			b := order[bi]
			if lv.Patches[b].Box.Lo[0] > ga.Hi[0] {
				break
			}
			// Proximity is symmetric: a.Grow(g) meets b iff b.Grow(g)
			// meets a.
			if ga.Intersects(lv.Patches[b].Box) {
				out[a] = append(out[a], b)
				out[b] = append(out[b], a)
			}
		}
	}
	for i := range out {
		sort.Ints(out[i])
	}
	return out
}
