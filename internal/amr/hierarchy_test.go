package amr

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewHierarchyLevelZero(t *testing.T) {
	h := NewHierarchy(NewBox(0, 0, 99, 99), 2, 3, 4)
	if h.NumLevels() != 1 {
		t.Fatalf("levels = %d", h.NumLevels())
	}
	l0 := h.Level(0)
	if len(l0.Patches) != 4 {
		t.Fatalf("patches = %d", len(l0.Patches))
	}
	if l0.NumCells() != 100*100 {
		t.Errorf("cells = %d", l0.NumCells())
	}
	owners := map[int]bool{}
	for _, p := range l0.Patches {
		owners[p.Owner] = true
	}
	if len(owners) != 4 {
		t.Errorf("owners = %v", owners)
	}
}

func TestRegridCreatesNestedLevels(t *testing.T) {
	h := NewHierarchy(NewBox(0, 0, 99, 99), 2, 3, 2)
	// Flag a blob on level 0 and a smaller blob on level 1 (so level 2
	// appears too).
	f0 := NewFlagField(h.LevelDomain(0))
	f0.SetBox(NewBox(40, 40, 59, 59))
	f1 := NewFlagField(h.LevelDomain(1))
	f1.SetBox(NewBox(90, 90, 109, 109))
	h.Regrid([]*FlagField{f0, f1}, DefaultRegridOptions)

	if h.NumLevels() != 3 {
		t.Fatalf("levels = %d, want 3", h.NumLevels())
	}
	// Level 1 must cover the refined flagged region.
	want1 := NewBox(40, 40, 59, 59).Refine(2)
	covered := func(lv *Level, region Box) bool {
		// every cell of region must be inside some patch
		for j := region.Lo[1]; j <= region.Hi[1]; j++ {
			for i := region.Lo[0]; i <= region.Hi[0]; i++ {
				ok := false
				for _, p := range lv.Patches {
					if p.Box.Contains(i, j) {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if !covered(h.Level(1), want1) {
		t.Error("level 1 does not cover flagged region")
	}
	want2 := NewBox(90, 90, 109, 109).Refine(2)
	if !covered(h.Level(2), want2) {
		t.Error("level 2 does not cover flagged region")
	}
}

func TestRegridProperNesting(t *testing.T) {
	h := NewHierarchy(NewBox(0, 0, 127, 127), 2, 4, 3)
	f0 := NewFlagField(h.LevelDomain(0))
	f0.SetBox(NewBox(30, 30, 49, 49))
	f1 := NewFlagField(h.LevelDomain(1))
	f1.SetBox(NewBox(70, 70, 89, 89))
	f2 := NewFlagField(h.LevelDomain(2))
	f2.SetBox(NewBox(150, 150, 169, 169))
	h.Regrid([]*FlagField{f0, f1, f2}, DefaultRegridOptions)

	// Every patch on level l>=1 must be contained in the union of
	// level l-1 patch footprints (coarsened check).
	for l := 1; l < h.NumLevels(); l++ {
		coarse := h.Level(l - 1)
		for _, p := range h.Level(l).Patches {
			foot := p.Box.Coarsen(h.Ratio)
			remaining := []Box{foot}
			for _, cp := range coarse.Patches {
				var next []Box
				for _, r := range remaining {
					next = append(next, r.Subtract(cp.Box)...)
				}
				remaining = next
			}
			if len(remaining) != 0 {
				t.Errorf("level %d patch %v escapes level %d cover: %v", l, p.Box, l-1, remaining)
			}
		}
	}
}

func TestRegridFamilies(t *testing.T) {
	h := NewHierarchy(NewBox(0, 0, 63, 63), 2, 2, 2)
	f0 := NewFlagField(h.LevelDomain(0))
	f0.SetBox(NewBox(10, 10, 19, 19))
	h.Regrid([]*FlagField{f0}, DefaultRegridOptions)
	if h.NumLevels() != 2 {
		t.Fatalf("levels = %d", h.NumLevels())
	}
	for _, fp := range h.Level(1).Patches {
		if len(fp.Parents) == 0 {
			t.Errorf("fine patch %v has no parents", fp.Box)
		}
		for _, pid := range fp.Parents {
			par := h.PatchByID(pid)
			if par == nil || par.Level != 0 {
				t.Errorf("bad parent id %d", pid)
			}
			found := false
			for _, cid := range par.Children {
				if cid == fp.ID {
					found = true
				}
			}
			if !found {
				t.Errorf("parent %d does not list child %d", pid, fp.ID)
			}
		}
	}
}

func TestRegridNoFlagsDropsFineLevels(t *testing.T) {
	h := NewHierarchy(NewBox(0, 0, 63, 63), 2, 3, 1)
	f0 := NewFlagField(h.LevelDomain(0))
	f0.SetBox(NewBox(10, 10, 19, 19))
	h.Regrid([]*FlagField{f0}, DefaultRegridOptions)
	if h.NumLevels() != 2 {
		t.Fatalf("levels = %d", h.NumLevels())
	}
	// Regrid with no flags: back to a single level.
	h.Regrid(nil, DefaultRegridOptions)
	if h.NumLevels() != 1 {
		t.Errorf("levels after empty regrid = %d", h.NumLevels())
	}
	if h.Regrids != 2 {
		t.Errorf("Regrids = %d", h.Regrids)
	}
}

func TestRegridRespectsMaxLevels(t *testing.T) {
	h := NewHierarchy(NewBox(0, 0, 63, 63), 2, 2, 1)
	f0 := NewFlagField(h.LevelDomain(0))
	f0.SetBox(NewBox(0, 0, 63, 63))
	f1 := NewFlagField(h.LevelDomain(1))
	f1.SetBox(h.LevelDomain(1))
	h.Regrid([]*FlagField{f0, f1}, DefaultRegridOptions)
	if h.NumLevels() > 2 {
		t.Errorf("levels = %d exceeds MaxLevels=2", h.NumLevels())
	}
}

func TestLocalPatches(t *testing.T) {
	h := NewHierarchy(NewBox(0, 0, 99, 99), 2, 1, 4)
	seen := 0
	for r := 0; r < 4; r++ {
		ps := h.LocalPatches(0, r)
		seen += len(ps)
		for _, p := range ps {
			if p.Owner != r {
				t.Errorf("rank %d got patch owned by %d", r, p.Owner)
			}
		}
	}
	if seen != len(h.Level(0).Patches) {
		t.Errorf("local patch union %d != %d", seen, len(h.Level(0).Patches))
	}
}

func TestMeshSpacing(t *testing.T) {
	if got := MeshSpacing(1.0, 2, 0); got != 1.0 {
		t.Errorf("l0 = %v", got)
	}
	if got := MeshSpacing(1.0, 2, 3); got != 0.125 {
		t.Errorf("l3 = %v", got)
	}
	if got := MeshSpacing(0.1, 4, 2); got != 0.1/16 {
		t.Errorf("r4 l2 = %v", got)
	}
}

func TestSplitLargeBoxes(t *testing.T) {
	boxes := []Box{NewBox(0, 0, 99, 99)}
	parts := SplitLargeBoxes(boxes, 1000)
	total := 0
	for _, p := range parts {
		if p.NumCells() > 1000*2 {
			t.Errorf("part %v has %d cells", p, p.NumCells())
		}
		total += p.NumCells()
	}
	if total != 10000 {
		t.Errorf("total = %d", total)
	}
}

func TestCensusAndString(t *testing.T) {
	h := NewHierarchy(NewBox(0, 0, 99, 99), 2, 2, 2)
	f0 := NewFlagField(h.LevelDomain(0))
	f0.SetBox(NewBox(0, 0, 9, 9))
	h.Regrid([]*FlagField{f0}, DefaultRegridOptions)
	cs := h.CensusReport()
	if len(cs) != 2 || cs[0].Cells != 10000 {
		t.Errorf("census = %+v", cs)
	}
	if cs[1].Coverage <= 0 || cs[1].Coverage > 1 {
		t.Errorf("coverage = %v", cs[1].Coverage)
	}
	if s := h.String(); !strings.Contains(s, "level 1") {
		t.Errorf("String = %q", s)
	}
}

func TestTotalCellsAndPatchByID(t *testing.T) {
	h := NewHierarchy(NewBox(0, 0, 31, 31), 2, 1, 1)
	if h.TotalCells() != 1024 {
		t.Errorf("total = %d", h.TotalCells())
	}
	p := h.Level(0).Patches[0]
	if h.PatchByID(p.ID) != p {
		t.Error("PatchByID failed")
	}
	if h.PatchByID(99999) != nil {
		t.Error("PatchByID should return nil for unknown id")
	}
}

// ---- load balance -------------------------------------------------------

func TestGreedyBalancerSpreadsLoad(t *testing.T) {
	boxes := []Box{
		NewBox(0, 0, 31, 31), // 1024
		NewBox(0, 0, 15, 15), // 256
		NewBox(0, 0, 15, 15), // 256
		NewBox(0, 0, 15, 15), // 256
		NewBox(0, 0, 15, 15), // 256
	}
	owners := GreedyBalancer{}.Assign(boxes, 0, 2, nil)
	imb := Imbalance(boxes, owners, 0, 2, nil)
	if imb > 1.05 {
		t.Errorf("greedy imbalance = %.3f", imb)
	}
}

func TestSFCBalancerLocality(t *testing.T) {
	// A 4x4 grid of equal boxes: contiguous Morton segments should give
	// perfect balance on 4 ranks.
	var boxes []Box
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			boxes = append(boxes, NewBox(i*8, j*8, i*8+7, j*8+7))
		}
	}
	owners := SFCBalancer{}.Assign(boxes, 0, 4, nil)
	imb := Imbalance(boxes, owners, 0, 4, nil)
	if imb > 1.01 {
		t.Errorf("sfc imbalance = %.3f", imb)
	}
}

func TestBalancersSingleRank(t *testing.T) {
	boxes := []Box{NewBox(0, 0, 3, 3), NewBox(4, 4, 9, 9)}
	for _, b := range []LoadBalancer{GreedyBalancer{}, SFCBalancer{}} {
		owners := b.Assign(boxes, 0, 1, nil)
		for _, o := range owners {
			if o != 0 {
				t.Errorf("%T assigned rank %d with 1 rank", b, o)
			}
		}
	}
}

func TestCustomWorkload(t *testing.T) {
	// A workload that makes the small box expensive must flip greedy's
	// assignment order.
	boxes := []Box{NewBox(0, 0, 31, 31), NewBox(0, 0, 3, 3)}
	costly := func(b Box, level int) float64 {
		if b.NumCells() < 100 {
			return 1e6
		}
		return float64(b.NumCells())
	}
	owners := GreedyBalancer{}.Assign(boxes, 0, 2, costly)
	if owners[0] == owners[1] {
		t.Errorf("expensive boxes share rank: %v", owners)
	}
}

// Property: every balancer returns a valid owner per box and balances a
// stream of equal boxes within a factor ~2.
func TestBalancerValidityProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, ranksRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 8
		nranks := int(ranksRaw%7) + 2
		boxes := make([]Box, n)
		for i := range boxes {
			x, y := rng.Intn(100), rng.Intn(100)
			boxes[i] = NewBox(x, y, x+7, y+7)
		}
		for _, bal := range []LoadBalancer{GreedyBalancer{}, SFCBalancer{}} {
			owners := bal.Assign(boxes, 1, nranks, nil)
			if len(owners) != n {
				return false
			}
			for _, o := range owners {
				if o < 0 || o >= nranks {
					return false
				}
			}
			if n >= 2*nranks {
				if Imbalance(boxes, owners, 1, nranks, nil) > 2.0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMortonKeyOrdering(t *testing.T) {
	// Morton keys must be monotone along each axis from the origin.
	if mortonKey(0, 0) >= mortonKey(1, 0) || mortonKey(0, 0) >= mortonKey(0, 1) {
		t.Error("morton origin not minimal")
	}
	if mortonKey(1, 0) == mortonKey(0, 1) {
		t.Error("morton collision")
	}
	if spread(0xFFFFFFFF) != 0x5555555555555555 {
		t.Errorf("spread = %x", spread(0xFFFFFFFF))
	}
}

func TestImbalancePerfect(t *testing.T) {
	boxes := []Box{NewBox(0, 0, 3, 3), NewBox(0, 0, 3, 3)}
	if got := Imbalance(boxes, []int{0, 1}, 0, 2, nil); got != 1 {
		t.Errorf("imbalance = %v", got)
	}
}

func TestCheckProperNesting(t *testing.T) {
	h := NewHierarchy(NewBox(0, 0, 63, 63), 2, 3, 2)
	f0 := NewFlagField(h.LevelDomain(0))
	f0.SetBox(NewBox(10, 10, 29, 29))
	f1 := NewFlagField(h.LevelDomain(1))
	f1.SetBox(NewBox(30, 30, 49, 49))
	h.Regrid([]*FlagField{f0, f1}, DefaultRegridOptions)
	if err := h.CheckProperNesting(); err != nil {
		t.Fatalf("regridded hierarchy invalid: %v", err)
	}
	// Corrupt it: add a level-2 patch far from the level-1 cover.
	h.Level(2).Patches = append(h.Level(2).Patches,
		&Patch{ID: 9999, Level: 2, Box: NewBox(240, 240, 252, 252)})
	if err := h.CheckProperNesting(); err == nil {
		t.Error("validator missed an un-nested patch")
	}
}

func TestCheckProperNestingDetectsOverlap(t *testing.T) {
	h := NewHierarchy(NewBox(0, 0, 31, 31), 2, 1, 1)
	h.Level(0).Patches = append(h.Level(0).Patches,
		&Patch{ID: 777, Level: 0, Box: NewBox(0, 0, 5, 5)})
	if err := h.CheckProperNesting(); err == nil {
		t.Error("validator missed overlapping patches")
	}
}
