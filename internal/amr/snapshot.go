package amr

import "fmt"

// Snapshots: a serializable description of a hierarchy's geometry, for
// checkpoint/restart. Field data is saved separately (package field);
// the snapshot restores the exact patch layout — IDs included — so
// saved patch data can be matched back up.

// PatchSnapshot is one patch's geometry.
type PatchSnapshot struct {
	ID    int
	Level int
	Box   Box
	Owner int
}

// Snapshot is a hierarchy's full geometric state.
type Snapshot struct {
	Domain        Box
	Ratio         int
	MaxLevels     int
	NumRanks      int
	NestingBuffer int
	Regrids       int
	Patches       []PatchSnapshot
	NextID        int
}

// Snapshot captures the hierarchy's geometry.
func (h *Hierarchy) Snapshot() Snapshot {
	s := Snapshot{
		Domain:        h.Domain,
		Ratio:         h.Ratio,
		MaxLevels:     h.MaxLevels,
		NumRanks:      h.NumRanks,
		NestingBuffer: h.NestingBuffer,
		Regrids:       h.Regrids,
		NextID:        h.nextID,
	}
	for _, lv := range h.levels {
		for _, p := range lv.Patches {
			s.Patches = append(s.Patches, PatchSnapshot{ID: p.ID, Level: p.Level, Box: p.Box, Owner: p.Owner})
		}
	}
	return s
}

// FromSnapshot reconstructs a hierarchy (including patch IDs and
// family links) from a snapshot.
func FromSnapshot(s Snapshot) (*Hierarchy, error) {
	if s.Ratio < 2 || s.MaxLevels < 1 || s.NumRanks < 1 {
		return nil, fmt.Errorf("amr: invalid snapshot header (ratio=%d maxLevels=%d ranks=%d)",
			s.Ratio, s.MaxLevels, s.NumRanks)
	}
	if s.Domain.Empty() {
		return nil, fmt.Errorf("amr: snapshot has empty domain %v", s.Domain)
	}
	if s.NestingBuffer < 0 || s.Regrids < 0 || s.NextID < 0 {
		return nil, fmt.Errorf("amr: invalid snapshot counters (nesting=%d regrids=%d nextID=%d)",
			s.NestingBuffer, s.Regrids, s.NextID)
	}
	if len(s.Patches) == 0 {
		return nil, fmt.Errorf("amr: snapshot has no patches")
	}
	h := &Hierarchy{
		Domain:        s.Domain,
		Ratio:         s.Ratio,
		MaxLevels:     s.MaxLevels,
		NumRanks:      s.NumRanks,
		Balancer:      GreedyBalancer{},
		NestingBuffer: s.NestingBuffer,
		Regrids:       s.Regrids,
		nextID:        s.NextID,
	}
	maxLevel := 0
	for _, p := range s.Patches {
		if p.Level < 0 {
			return nil, fmt.Errorf("amr: snapshot patch %d has negative level", p.ID)
		}
		if p.Level > maxLevel {
			maxLevel = p.Level
		}
	}
	if maxLevel >= s.MaxLevels {
		return nil, fmt.Errorf("amr: snapshot patch level %d exceeds maxLevels %d", maxLevel, s.MaxLevels)
	}
	h.levels = make([]*Level, maxLevel+1)
	for l := 0; l <= maxLevel; l++ {
		h.levels[l] = &Level{Index: l, Domain: h.levelDomain(l)}
	}
	seen := map[int]bool{}
	for _, p := range s.Patches {
		if seen[p.ID] {
			return nil, fmt.Errorf("amr: snapshot has duplicate patch ID %d", p.ID)
		}
		seen[p.ID] = true
		if p.ID < 0 {
			return nil, fmt.Errorf("amr: snapshot patch has negative ID %d", p.ID)
		}
		if p.Box.Empty() {
			return nil, fmt.Errorf("amr: snapshot patch %d has empty box %v", p.ID, p.Box)
		}
		if !h.levels[p.Level].Domain.ContainsBox(p.Box) {
			return nil, fmt.Errorf("amr: snapshot patch %d box %v escapes level %d domain %v",
				p.ID, p.Box, p.Level, h.levels[p.Level].Domain)
		}
		if p.Owner < 0 || p.Owner >= s.NumRanks {
			return nil, fmt.Errorf("amr: snapshot patch %d owner %d out of range (ranks=%d)",
				p.ID, p.Owner, s.NumRanks)
		}
		h.levels[p.Level].Patches = append(h.levels[p.Level].Patches,
			&Patch{ID: p.ID, Level: p.Level, Box: p.Box, Owner: p.Owner})
		if p.ID >= h.nextID {
			h.nextID = p.ID + 1
		}
	}
	for l := 0; l <= maxLevel; l++ {
		if len(h.levels[l].Patches) == 0 {
			return nil, fmt.Errorf("amr: snapshot level %d has no patches", l)
		}
	}
	h.linkFamilies()
	return h, nil
}
