package amr

import "fmt"

// Repartition: elastic restart support. A checkpoint records the patch
// geometry produced under P_old ranks; restoring onto P_new ranks must
// yield the hierarchy a native P_new run would be using at that point.
// Two facts make that well-defined:
//
//   - Refined-level boxes are P-invariant: clustering and splitting act
//     on replicated flag data, so only the *owners* (and IDs) of level
//     1+ patches depend on the rank count. Reassigning the snapshot's
//     boxes, in their stored (creation) order, through the same
//     balancer a native run uses reproduces the native distribution.
//   - Level 0 is a pure function of (domain, P): NewHierarchy's uniform
//     decomposition. It is rebuilt from scratch for P_new; its boxes
//     generally differ from the snapshot's, so the caller must copy
//     level-0 field data by region, not by patch identity.
//
// Patch IDs restart from zero (level 0 first, then each finer level in
// order), exactly as a native run's would after its construction-and-
// regrid sequence — IDs never enter the numerics, only identity
// matching, and every rank computing Repartition from the same
// replicated snapshot lands on the same IDs.

// Repartition rebuilds a snapshotted hierarchy for a different rank
// count. balancer defaults to GreedyBalancer and work to
// UniformWorkload — pass the same policy the running mesh uses so the
// layout matches what its next regrid would produce.
func Repartition(s Snapshot, numRanks int, balancer LoadBalancer, work Workload) (*Hierarchy, error) {
	if numRanks < 1 {
		return nil, fmt.Errorf("amr: repartition onto %d ranks", numRanks)
	}
	// Validate the snapshot through the strict single-P loader first.
	old, err := FromSnapshot(s)
	if err != nil {
		return nil, err
	}
	if balancer == nil {
		balancer = GreedyBalancer{}
	}
	if work == nil {
		work = UniformWorkload
	}
	h := NewHierarchy(s.Domain, s.Ratio, s.MaxLevels, numRanks)
	h.Balancer = balancer
	h.NestingBuffer = s.NestingBuffer
	h.Regrids = s.Regrids
	for l := 1; l < old.NumLevels(); l++ {
		src := old.Level(l)
		boxes := make([]Box, len(src.Patches))
		for i, p := range src.Patches {
			boxes[i] = p.Box
		}
		owners := balancer.Assign(boxes, l, numRanks, work)
		lv := &Level{Index: l, Domain: h.levelDomain(l)}
		for i, b := range boxes {
			lv.Patches = append(lv.Patches, &Patch{ID: h.takeID(), Level: l, Box: b, Owner: owners[i]})
		}
		h.levels = append(h.levels, lv)
	}
	h.linkFamilies()
	return h, nil
}
