package amr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoxBasics(t *testing.T) {
	b := NewBox(0, 0, 9, 4)
	nx, ny := b.Size()
	if nx != 10 || ny != 5 || b.NumCells() != 50 {
		t.Errorf("size = (%d,%d), cells = %d", nx, ny, b.NumCells())
	}
	if b.Empty() {
		t.Error("non-empty box reported empty")
	}
	if !b.Contains(0, 0) || !b.Contains(9, 4) || b.Contains(10, 0) || b.Contains(0, 5) {
		t.Error("Contains wrong at corners")
	}
}

func TestBoxEmpty(t *testing.T) {
	e := NewBox(5, 5, 4, 9)
	if !e.Empty() || e.NumCells() != 0 {
		t.Error("inverted box should be empty")
	}
	one := NewBox(3, 3, 3, 3)
	if one.Empty() || one.NumCells() != 1 {
		t.Error("single-cell box misclassified")
	}
}

func TestIntersect(t *testing.T) {
	a := NewBox(0, 0, 9, 9)
	b := NewBox(5, 5, 14, 14)
	ov := a.Intersect(b)
	if ov != NewBox(5, 5, 9, 9) {
		t.Errorf("intersect = %v", ov)
	}
	c := NewBox(20, 20, 30, 30)
	if !a.Intersect(c).Empty() || a.Intersects(c) {
		t.Error("disjoint boxes intersect")
	}
}

func TestGrowShift(t *testing.T) {
	b := NewBox(2, 2, 4, 4)
	if g := b.Grow(1); g != NewBox(1, 1, 5, 5) {
		t.Errorf("grow = %v", g)
	}
	if g := b.Grow(-1); g != NewBox(3, 3, 3, 3) {
		t.Errorf("shrink = %v", g)
	}
	if s := b.Shift(10, -2); s != NewBox(12, 0, 14, 2) {
		t.Errorf("shift = %v", s)
	}
}

func TestRefineCoarsenRoundTrip(t *testing.T) {
	b := NewBox(1, 2, 5, 7)
	r := b.Refine(2)
	if r != NewBox(2, 4, 11, 15) {
		t.Errorf("refine = %v", r)
	}
	if c := r.Coarsen(2); c != b {
		t.Errorf("coarsen(refine(b)) = %v, want %v", c, b)
	}
}

func TestCoarsenNegativeIndices(t *testing.T) {
	b := NewBox(-4, -3, -1, -1)
	c := b.Coarsen(2)
	if c != NewBox(-2, -2, -1, -1) {
		t.Errorf("coarsen = %v", c)
	}
}

func TestBoundingBox(t *testing.T) {
	a := NewBox(0, 0, 2, 2)
	b := NewBox(5, 7, 6, 9)
	bb := a.BoundingBox(b)
	if bb != NewBox(0, 0, 6, 9) {
		t.Errorf("bounding = %v", bb)
	}
	empty := NewBox(1, 1, 0, 0)
	if a.BoundingBox(empty) != a || empty.BoundingBox(a) != a {
		t.Error("bounding with empty should return the other")
	}
}

func TestSplit(t *testing.T) {
	b := NewBox(0, 0, 9, 9)
	l, r := b.SplitX(4)
	if l != NewBox(0, 0, 3, 9) || r != NewBox(4, 0, 9, 9) {
		t.Errorf("splitX: %v %v", l, r)
	}
	bo, to := b.SplitY(7)
	if bo != NewBox(0, 0, 9, 6) || to != NewBox(0, 7, 9, 9) {
		t.Errorf("splitY: %v %v", bo, to)
	}
	if l.NumCells()+r.NumCells() != b.NumCells() {
		t.Error("split loses cells")
	}
}

func TestSubtract(t *testing.T) {
	b := NewBox(0, 0, 9, 9)
	hole := NewBox(3, 3, 6, 6)
	parts := b.Subtract(hole)
	total := 0
	for _, p := range parts {
		if p.Intersects(hole) {
			t.Errorf("part %v overlaps hole", p)
		}
		total += p.NumCells()
		for _, q := range parts {
			if p != q && p.Intersects(q) {
				t.Errorf("parts %v and %v overlap", p, q)
			}
		}
	}
	if total != b.NumCells()-hole.NumCells() {
		t.Errorf("subtract cells = %d, want %d", total, b.NumCells()-hole.NumCells())
	}
	// Full containment and disjoint cases.
	if got := b.Subtract(b); got != nil {
		t.Errorf("b - b = %v", got)
	}
	if got := b.Subtract(NewBox(20, 20, 25, 25)); len(got) != 1 || got[0] != b {
		t.Errorf("b - disjoint = %v", got)
	}
}

// Property: Subtract covers exactly the complement cells for random boxes.
func TestSubtractProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rnd := func() Box {
			x0, y0 := rng.Intn(12), rng.Intn(12)
			return NewBox(x0, y0, x0+rng.Intn(8), y0+rng.Intn(8))
		}
		b, o := rnd(), rnd()
		parts := b.Subtract(o)
		// Verify cell-by-cell membership.
		for i := b.Lo[0]; i <= b.Hi[0]; i++ {
			for j := b.Lo[1]; j <= b.Hi[1]; j++ {
				inParts := 0
				for _, p := range parts {
					if p.Contains(i, j) {
						inParts++
					}
				}
				wantIn := 0
				if !o.Contains(i, j) {
					wantIn = 1
				}
				if inParts != wantIn {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Refine then Coarsen is the identity for any ratio >= 2.
func TestRefineCoarsenProperty(t *testing.T) {
	f := func(x0, y0 int8, w, hgt uint8, rRaw uint8) bool {
		r := int(rRaw%4) + 2
		b := NewBox(int(x0), int(y0), int(x0)+int(w%32), int(y0)+int(hgt%32))
		return b.Refine(r).Coarsen(r) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: refined box has exactly ratio^2 times the cells.
func TestRefineCellCountProperty(t *testing.T) {
	f := func(x0, y0 int8, w, hgt uint8, rRaw uint8) bool {
		r := int(rRaw%4) + 2
		b := NewBox(int(x0), int(y0), int(x0)+int(w%32), int(y0)+int(hgt%32))
		return b.Refine(r).NumCells() == r*r*b.NumCells()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecomposeUniform(t *testing.T) {
	b := NewBox(0, 0, 99, 99)
	for _, n := range []int{1, 2, 4, 6, 16, 48} {
		parts := b.DecomposeUniform(n)
		if len(parts) != n {
			t.Fatalf("n=%d: got %d parts", n, len(parts))
		}
		total := 0
		for i, p := range parts {
			total += p.NumCells()
			for j := i + 1; j < len(parts); j++ {
				if p.Intersects(parts[j]) {
					t.Errorf("n=%d: parts %d,%d overlap", n, i, j)
				}
			}
			if !b.ContainsBox(p) {
				t.Errorf("n=%d: part %v escapes domain", n, p)
			}
		}
		if total != b.NumCells() {
			t.Errorf("n=%d: cells %d != %d", n, total, b.NumCells())
		}
	}
}

func TestFloorDiv(t *testing.T) {
	cases := [][3]int{{7, 2, 3}, {-7, 2, -4}, {-8, 2, -4}, {8, 4, 2}, {-1, 4, -1}}
	for _, c := range cases {
		if got := floorDiv(c[0], c[1]); got != c[2] {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestContainsBox(t *testing.T) {
	outer := NewBox(0, 0, 9, 9)
	if !outer.ContainsBox(NewBox(2, 2, 7, 7)) || outer.ContainsBox(NewBox(5, 5, 12, 7)) {
		t.Error("ContainsBox wrong")
	}
	if !outer.ContainsBox(NewBox(3, 3, 2, 2)) {
		t.Error("empty box must be contained")
	}
}

func TestBoxString(t *testing.T) {
	if s := NewBox(1, 2, 3, 4).String(); s != "[(1,2)-(3,4)]" {
		t.Errorf("String = %q", s)
	}
}
