package amr

import (
	"fmt"
	"strings"
)

// Patch is one rectangular grid block on a level of the hierarchy. The
// patch metadata (box, owner, family links) is replicated on all ranks,
// as GrACE replicates its directory; only patch *data* is distributed.
type Patch struct {
	ID    int
	Level int
	Box   Box
	// Owner is the rank holding this patch's data.
	Owner int
	// Parents lists the IDs of coarser-level patches this patch
	// overlaps (after coarsening); empty on level 0.
	Parents []int
	// Children lists finer-level patches overlapping this one.
	Children []int
}

// Level collects the patches of one refinement depth.
type Level struct {
	// Index is the level number, 0 = coarsest.
	Index int
	// Domain is the whole problem domain in this level's index space.
	Domain Box
	// Patches in deterministic creation order.
	Patches []*Patch
}

// NumCells totals the cells of all patches on the level.
func (l *Level) NumCells() int {
	n := 0
	for _, p := range l.Patches {
		n += p.Box.NumCells()
	}
	return n
}

// Hierarchy is the SAMR patch hierarchy: level 0 covers the domain;
// finer levels cover flagged subregions at Ratio× resolution. It is
// geometric only — field data lives in package field — matching the
// paper's split between the Mesh and Data Object subsystems.
type Hierarchy struct {
	// Domain is the level-0 index-space domain.
	Domain Box
	// Ratio is the constant refinement ratio between adjacent levels.
	Ratio int
	// MaxLevels caps the hierarchy depth (1 = uniform grid).
	MaxLevels int
	// NumRanks is the size of the SCMD cohort data is distributed over.
	NumRanks int
	// Balancer assigns patches to ranks; defaults to GreedyBalancer.
	Balancer LoadBalancer
	// NestingBuffer is the number of coarse cells a fine level must stay
	// inside its parent level's interior (standard proper nesting).
	NestingBuffer int

	levels []*Level
	nextID int
	// Regrids counts hierarchy rebuilds (diagnostics).
	Regrids int
}

// NewHierarchy creates a hierarchy whose level 0 tiles the domain with
// one patch per rank (uniform decomposition).
func NewHierarchy(domain Box, ratio, maxLevels, numRanks int) *Hierarchy {
	if ratio < 2 {
		ratio = 2
	}
	if maxLevels < 1 {
		maxLevels = 1
	}
	if numRanks < 1 {
		numRanks = 1
	}
	h := &Hierarchy{
		Domain:        domain,
		Ratio:         ratio,
		MaxLevels:     maxLevels,
		NumRanks:      numRanks,
		Balancer:      GreedyBalancer{},
		NestingBuffer: 1,
	}
	l0 := &Level{Index: 0, Domain: domain}
	boxes := domain.DecomposeUniform(numRanks)
	owners := make([]int, len(boxes))
	for i := range owners {
		owners[i] = i % numRanks
	}
	for i, b := range boxes {
		if b.Empty() {
			continue
		}
		l0.Patches = append(l0.Patches, &Patch{ID: h.takeID(), Level: 0, Box: b, Owner: owners[i]})
	}
	h.levels = []*Level{l0}
	return h
}

// NewHierarchyDecomposed creates a hierarchy whose level 0 consists of
// the given boxes with the given owners (one owner per box). The
// paper's load-balancing policy — "patches are collated and
// distributed among processors to maximize load-balance" — needs more
// patches than ranks; this constructor installs such a decomposition.
func NewHierarchyDecomposed(domain Box, ratio, maxLevels, numRanks int, boxes []Box, owners []int) *Hierarchy {
	if len(boxes) != len(owners) {
		panic("amr: boxes/owners length mismatch")
	}
	h := NewHierarchy(domain, ratio, maxLevels, numRanks)
	l0 := &Level{Index: 0, Domain: domain}
	h.nextID = 0
	for i, b := range boxes {
		if b.Empty() {
			continue
		}
		l0.Patches = append(l0.Patches, &Patch{ID: h.takeID(), Level: 0, Box: b, Owner: owners[i]})
	}
	h.levels = []*Level{l0}
	return h
}

func (h *Hierarchy) takeID() int {
	id := h.nextID
	h.nextID++
	return id
}

// NumLevels is the current hierarchy depth.
func (h *Hierarchy) NumLevels() int { return len(h.levels) }

// Level returns the l-th level; panics on range error (programming bug).
func (h *Hierarchy) Level(l int) *Level {
	if l < 0 || l >= len(h.levels) {
		panic(fmt.Sprintf("amr: level %d out of range [0,%d)", l, len(h.levels)))
	}
	return h.levels[l]
}

// PatchByID scans for a patch; returns nil if absent.
func (h *Hierarchy) PatchByID(id int) *Patch {
	for _, lv := range h.levels {
		for _, p := range lv.Patches {
			if p.ID == id {
				return p
			}
		}
	}
	return nil
}

// LocalPatches lists patches on level l owned by the given rank.
func (h *Hierarchy) LocalPatches(l, rank int) []*Patch {
	var out []*Patch
	for _, p := range h.Level(l).Patches {
		if p.Owner == rank {
			out = append(out, p)
		}
	}
	return out
}

// TotalCells sums cells over all levels.
func (h *Hierarchy) TotalCells() int {
	n := 0
	for _, lv := range h.levels {
		n += lv.NumCells()
	}
	return n
}

// MeshSpacing returns the physical cell size on level l given the
// level-0 spacing.
func MeshSpacing(dx0 float64, ratio, level int) float64 {
	dx := dx0
	for i := 0; i < level; i++ {
		dx /= float64(ratio)
	}
	return dx
}

// RegridOptions tunes hierarchy rebuilds.
type RegridOptions struct {
	Cluster ClusterOptions
	// MaxPatchCells splits produced boxes larger than this so the
	// balancer has units to distribute; 0 means no splitting.
	MaxPatchCells int
	// Workload estimates the cost of a box on a level for balancing.
	Workload Workload
}

// DefaultRegridOptions is suitable for the flame and shock problems.
var DefaultRegridOptions = RegridOptions{
	Cluster:       DefaultClusterOptions,
	MaxPatchCells: 4096,
}

// Regrid rebuilds levels 1..MaxLevels-1 from per-level flag fields.
// flags[l] holds refinement flags in level l's index space; missing or
// nil entries mean "no flags on that level". Proceeding from the finest
// allowed level downward, each level's flags are augmented with the
// coarsened boxes of the level two finer (proper nesting), clustered,
// refined, split and balanced. Level 0 is never rebuilt.
func (h *Hierarchy) Regrid(flags []*FlagField, opt RegridOptions) {
	if opt.Cluster.Efficiency == 0 {
		opt.Cluster = DefaultClusterOptions
	}
	h.Regrids++
	maxNew := h.MaxLevels - 1 // deepest level index we may build
	// newBoxes[l] holds boxes for rebuilt level l (level-l index space).
	newBoxes := make([][]Box, h.MaxLevels)
	for l := maxNew - 1; l >= 0; l-- {
		ff := NewFlagField(h.levelDomain(l))
		if l < len(flags) && flags[l] != nil {
			src := flags[l]
			ov := ff.Box.Intersect(src.Box)
			for j := ov.Lo[1]; j <= ov.Hi[1]; j++ {
				for i := ov.Lo[0]; i <= ov.Hi[0]; i++ {
					if src.Get(i, j) {
						ff.Set(i, j)
					}
				}
			}
		}
		// Proper nesting: boxes of new level l+2 must live inside new
		// level l+1, so flag their coarsened footprint (plus buffer)
		// at level l.
		if l+2 <= maxNew {
			for _, fb := range newBoxes[l+2] {
				cb := fb.Coarsen(h.Ratio * h.Ratio).Grow(h.NestingBuffer)
				ff.SetBox(cb.Intersect(ff.Box))
			}
		}
		if ff.Count() == 0 {
			newBoxes[l+1] = nil
			continue
		}
		ff.Buffer(h.NestingBuffer)
		boxes := Cluster(ff, opt.Cluster)
		// Refine into level l+1 index space and clip to domain.
		fineDomain := h.levelDomain(l + 1)
		var fine []Box
		for _, b := range boxes {
			rb := b.Refine(h.Ratio).Intersect(fineDomain)
			if !rb.Empty() {
				fine = append(fine, rb)
			}
		}
		if opt.MaxPatchCells > 0 {
			fine = SplitLargeBoxes(fine, opt.MaxPatchCells)
		}
		newBoxes[l+1] = fine
	}

	// Install new levels 1..maxNew.
	work := opt.Workload
	if work == nil {
		work = UniformWorkload
	}
	rebuilt := []*Level{h.levels[0]}
	for l := 1; l <= maxNew; l++ {
		boxes := newBoxes[l]
		if len(boxes) == 0 {
			break
		}
		owners := h.Balancer.Assign(boxes, l, h.NumRanks, work)
		lv := &Level{Index: l, Domain: h.levelDomain(l)}
		for i, b := range boxes {
			lv.Patches = append(lv.Patches, &Patch{
				ID: h.takeID(), Level: l, Box: b, Owner: owners[i],
			})
		}
		rebuilt = append(rebuilt, lv)
	}
	h.levels = rebuilt
	h.linkFamilies()
}

// linkFamilies recomputes Parents/Children across adjacent levels.
func (h *Hierarchy) linkFamilies() {
	for _, lv := range h.levels {
		for _, p := range lv.Patches {
			p.Parents = p.Parents[:0]
			p.Children = p.Children[:0]
		}
	}
	for l := 1; l < len(h.levels); l++ {
		coarse := h.levels[l-1]
		for _, fp := range h.levels[l].Patches {
			foot := fp.Box.Coarsen(h.Ratio)
			for _, cp := range coarse.Patches {
				if cp.Box.Intersects(foot) {
					fp.Parents = append(fp.Parents, cp.ID)
					cp.Children = append(cp.Children, fp.ID)
				}
			}
		}
	}
}

// levelDomain is the problem domain in level l's index space.
func (h *Hierarchy) levelDomain(l int) Box {
	d := h.Domain
	for i := 0; i < l; i++ {
		d = d.Refine(h.Ratio)
	}
	return d
}

// LevelDomain exposes levelDomain for callers sizing fields.
func (h *Hierarchy) LevelDomain(l int) Box { return h.levelDomain(l) }

// SplitLargeBoxes bisects boxes along their longer axis until none
// exceeds maxCells.
func SplitLargeBoxes(boxes []Box, maxCells int) []Box {
	var out []Box
	stack := append([]Box(nil), boxes...)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b.Empty() {
			continue
		}
		if b.NumCells() <= maxCells {
			out = append(out, b)
			continue
		}
		nx, ny := b.Size()
		if nx >= ny {
			l, r := b.SplitX(b.Lo[0] + nx/2)
			stack = append(stack, l, r)
		} else {
			bt, tp := b.SplitY(b.Lo[1] + ny/2)
			stack = append(stack, bt, tp)
		}
	}
	return out
}

// CheckProperNesting verifies the hierarchy invariants: every fine
// patch lies inside the domain, inside the union of the next coarser
// level's patches, and no two same-level patches overlap. It returns
// the first violation found, or nil.
func (h *Hierarchy) CheckProperNesting() error {
	for l, lv := range h.levels {
		domain := h.levelDomain(l)
		for i, p := range lv.Patches {
			if !domain.ContainsBox(p.Box) {
				return fmt.Errorf("amr: level %d patch %v escapes domain %v", l, p.Box, domain)
			}
			for j := i + 1; j < len(lv.Patches); j++ {
				if p.Box.Intersects(lv.Patches[j].Box) {
					return fmt.Errorf("amr: level %d patches %v and %v overlap", l, p.Box, lv.Patches[j].Box)
				}
			}
			if l == 0 {
				continue
			}
			remaining := []Box{p.Box.Coarsen(h.Ratio)}
			for _, cp := range h.levels[l-1].Patches {
				var next []Box
				for _, r := range remaining {
					next = append(next, r.Subtract(cp.Box)...)
				}
				remaining = next
			}
			if len(remaining) != 0 {
				return fmt.Errorf("amr: level %d patch %v not nested in level %d (uncovered: %v)",
					l, p.Box, l-1, remaining)
			}
		}
	}
	return nil
}

// Census summarizes the hierarchy per level: patch count, cell count,
// and flagged coverage fraction of the domain — the data behind the
// paper's Fig 4 patch-distribution plot.
type Census struct {
	Level    int
	Patches  int
	Cells    int
	Coverage float64 // cells / level-domain cells
}

// CensusReport computes per-level statistics.
func (h *Hierarchy) CensusReport() []Census {
	out := make([]Census, len(h.levels))
	for i, lv := range h.levels {
		out[i] = Census{
			Level:    i,
			Patches:  len(lv.Patches),
			Cells:    lv.NumCells(),
			Coverage: float64(lv.NumCells()) / float64(lv.Domain.NumCells()),
		}
	}
	return out
}

// String renders a short textual summary.
func (h *Hierarchy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hierarchy: domain=%v ratio=%d levels=%d\n", h.Domain, h.Ratio, len(h.levels))
	for _, c := range h.CensusReport() {
		fmt.Fprintf(&b, "  level %d: %4d patches %8d cells (%.1f%% coverage)\n",
			c.Level, c.Patches, c.Cells, 100*c.Coverage)
	}
	return b.String()
}
