// Package amr implements 2D structured adaptive mesh refinement in the
// Berger–Colella style: a hierarchy of logically rectangular patches,
// recursively refined by a constant ratio over flagged regions, with
// point clustering, proper nesting, and load-balanced domain
// decomposition. It is the stand-in for the GrACE data-management
// library the paper wraps into its GrACEComponent.
package amr

import "fmt"

// Box is a rectangle in a level's integer index space. Lo and Hi are
// inclusive cell indices, so a Box with Lo==Hi contains one cell. The
// zero Box is the single cell at the origin; emptiness is represented
// explicitly by Hi < Lo in any direction.
type Box struct {
	Lo, Hi [2]int
}

// NewBox builds a box from corner indices (inclusive).
func NewBox(lox, loy, hix, hiy int) Box {
	return Box{Lo: [2]int{lox, loy}, Hi: [2]int{hix, hiy}}
}

// Empty reports whether the box contains no cells.
func (b Box) Empty() bool {
	return b.Hi[0] < b.Lo[0] || b.Hi[1] < b.Lo[1]
}

// Size returns the cell extents (nx, ny); zero/negative dims mean empty.
func (b Box) Size() (int, int) {
	return b.Hi[0] - b.Lo[0] + 1, b.Hi[1] - b.Lo[1] + 1
}

// NumCells is the total cell count, 0 for empty boxes.
func (b Box) NumCells() int {
	nx, ny := b.Size()
	if nx <= 0 || ny <= 0 {
		return 0
	}
	return nx * ny
}

// Contains reports whether (i, j) lies inside the box.
func (b Box) Contains(i, j int) bool {
	return i >= b.Lo[0] && i <= b.Hi[0] && j >= b.Lo[1] && j <= b.Hi[1]
}

// ContainsBox reports whether o lies entirely inside b. An empty o is
// contained in anything.
func (b Box) ContainsBox(o Box) bool {
	if o.Empty() {
		return true
	}
	return o.Lo[0] >= b.Lo[0] && o.Hi[0] <= b.Hi[0] && o.Lo[1] >= b.Lo[1] && o.Hi[1] <= b.Hi[1]
}

// Intersect returns the overlap of two boxes (possibly empty).
func (b Box) Intersect(o Box) Box {
	r := Box{}
	for d := 0; d < 2; d++ {
		r.Lo[d] = max(b.Lo[d], o.Lo[d])
		r.Hi[d] = min(b.Hi[d], o.Hi[d])
	}
	return r
}

// Intersects reports whether the boxes share at least one cell.
func (b Box) Intersects(o Box) bool {
	return !b.Intersect(o).Empty()
}

// Grow expands the box by n cells on every side (n may be negative to
// shrink).
func (b Box) Grow(n int) Box {
	return Box{
		Lo: [2]int{b.Lo[0] - n, b.Lo[1] - n},
		Hi: [2]int{b.Hi[0] + n, b.Hi[1] + n},
	}
}

// Shift translates the box by (di, dj).
func (b Box) Shift(di, dj int) Box {
	return Box{
		Lo: [2]int{b.Lo[0] + di, b.Lo[1] + dj},
		Hi: [2]int{b.Hi[0] + di, b.Hi[1] + dj},
	}
}

// Refine maps the box to the index space one level finer with the given
// ratio: each coarse cell becomes ratio×ratio fine cells.
func (b Box) Refine(ratio int) Box {
	return Box{
		Lo: [2]int{b.Lo[0] * ratio, b.Lo[1] * ratio},
		Hi: [2]int{(b.Hi[0]+1)*ratio - 1, (b.Hi[1]+1)*ratio - 1},
	}
}

// Coarsen maps the box to the next coarser index space (floor division,
// correct for negative indices too). A fine box maps onto every coarse
// cell it touches.
func (b Box) Coarsen(ratio int) Box {
	return Box{
		Lo: [2]int{floorDiv(b.Lo[0], ratio), floorDiv(b.Lo[1], ratio)},
		Hi: [2]int{floorDiv(b.Hi[0], ratio), floorDiv(b.Hi[1], ratio)},
	}
}

// BoundingBox returns the smallest box covering both operands.
func (b Box) BoundingBox(o Box) Box {
	if b.Empty() {
		return o
	}
	if o.Empty() {
		return b
	}
	r := Box{}
	for d := 0; d < 2; d++ {
		r.Lo[d] = min(b.Lo[d], o.Lo[d])
		r.Hi[d] = max(b.Hi[d], o.Hi[d])
	}
	return r
}

// Equal reports exact equality.
func (b Box) Equal(o Box) bool { return b == o }

func (b Box) String() string {
	return fmt.Sprintf("[(%d,%d)-(%d,%d)]", b.Lo[0], b.Lo[1], b.Hi[0], b.Hi[1])
}

// SplitX cuts the box at index i: the left part keeps columns < i, the
// right part keeps columns >= i.
func (b Box) SplitX(i int) (Box, Box) {
	left := b
	left.Hi[0] = i - 1
	right := b
	right.Lo[0] = i
	return left, right
}

// SplitY cuts the box at row j.
func (b Box) SplitY(j int) (Box, Box) {
	bot := b
	bot.Hi[1] = j - 1
	top := b
	top.Lo[1] = j
	return bot, top
}

// Subtract returns b minus o as a list of disjoint boxes covering every
// cell of b outside o.
func (b Box) Subtract(o Box) []Box {
	ov := b.Intersect(o)
	if ov.Empty() {
		return []Box{b}
	}
	if ov == b {
		return nil
	}
	var out []Box
	rest := b
	// Slabs below and above the overlap in y.
	if rest.Lo[1] < ov.Lo[1] {
		bot, top := rest.SplitY(ov.Lo[1])
		out = append(out, bot)
		rest = top
	}
	if rest.Hi[1] > ov.Hi[1] {
		bot, top := rest.SplitY(ov.Hi[1] + 1)
		out = append(out, top)
		rest = bot
	}
	// Slabs left and right of the overlap in x.
	if rest.Lo[0] < ov.Lo[0] {
		l, r := rest.SplitX(ov.Lo[0])
		out = append(out, l)
		rest = r
	}
	if rest.Hi[0] > ov.Hi[0] {
		l, r := rest.SplitX(ov.Hi[0] + 1)
		out = append(out, r)
		rest = l
	}
	return out
}

// DecomposeUniform partitions the box into an approximately pn×pm grid
// of sub-boxes, one per rank, choosing the process grid that minimizes
// the aspect-ratio penalty. It returns exactly n boxes (some may repeat
// empty if n exceeds the cell count).
func (b Box) DecomposeUniform(n int) []Box {
	if n <= 0 {
		return nil
	}
	nx, ny := b.Size()
	// Pick px*py == n with px/py as close to nx/ny as possible.
	bestPx, bestPy := 1, n
	bestScore := -1.0
	for px := 1; px <= n; px++ {
		if n%px != 0 {
			continue
		}
		py := n / px
		// Score: perimeter-to-area proxy (lower better).
		w := float64(nx) / float64(px)
		h := float64(ny) / float64(py)
		if w < 1 || h < 1 {
			continue
		}
		score := w + h
		if bestScore < 0 || score < bestScore {
			bestScore = score
			bestPx, bestPy = px, py
		}
	}
	out := make([]Box, 0, n)
	for pj := 0; pj < bestPy; pj++ {
		j0 := b.Lo[1] + pj*ny/bestPy
		j1 := b.Lo[1] + (pj+1)*ny/bestPy - 1
		for pi := 0; pi < bestPx; pi++ {
			i0 := b.Lo[0] + pi*nx/bestPx
			i1 := b.Lo[0] + (pi+1)*nx/bestPx - 1
			out = append(out, NewBox(i0, j0, i1, j1))
		}
	}
	return out
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
