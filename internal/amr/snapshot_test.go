package amr

import "testing"

func TestSnapshotRoundTrip(t *testing.T) {
	h := NewHierarchy(NewBox(0, 0, 63, 63), 2, 3, 4)
	f0 := NewFlagField(h.LevelDomain(0))
	f0.SetBox(NewBox(10, 10, 29, 29))
	f1 := NewFlagField(h.LevelDomain(1))
	f1.SetBox(NewBox(30, 30, 45, 45))
	h.Regrid([]*FlagField{f0, f1}, DefaultRegridOptions)

	s := h.Snapshot()
	h2, err := FromSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumLevels() != h.NumLevels() {
		t.Fatalf("levels %d != %d", h2.NumLevels(), h.NumLevels())
	}
	for l := 0; l < h.NumLevels(); l++ {
		a, b := h.Level(l).Patches, h2.Level(l).Patches
		if len(a) != len(b) {
			t.Fatalf("level %d patch count %d != %d", l, len(b), len(a))
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Box != b[i].Box || a[i].Owner != b[i].Owner {
				t.Errorf("level %d patch %d mismatch: %+v vs %+v", l, i, a[i], b[i])
			}
			if len(a[i].Parents) != len(b[i].Parents) {
				t.Errorf("family links not rebuilt for patch %d", a[i].ID)
			}
		}
	}
	if h2.Regrids != h.Regrids {
		t.Errorf("regrids %d != %d", h2.Regrids, h.Regrids)
	}
	// New IDs after restore must not collide with restored ones.
	f2 := NewFlagField(h2.LevelDomain(0))
	f2.SetBox(NewBox(40, 40, 55, 55))
	h2.Regrid([]*FlagField{f2}, DefaultRegridOptions)
	seen := map[int]bool{}
	for l := 0; l < h2.NumLevels(); l++ {
		for _, p := range h2.Level(l).Patches {
			if seen[p.ID] {
				t.Fatalf("duplicate patch ID %d after post-restore regrid", p.ID)
			}
			seen[p.ID] = true
		}
	}
}

func TestFromSnapshotValidation(t *testing.T) {
	cases := []Snapshot{
		{}, // zero header
		{Domain: NewBox(0, 0, 7, 7), Ratio: 2, MaxLevels: 1, NumRanks: 1,
			Patches: []PatchSnapshot{{ID: 0, Level: 1, Box: NewBox(0, 0, 3, 3)}}}, // level beyond max
		{Domain: NewBox(0, 0, 7, 7), Ratio: 2, MaxLevels: 2, NumRanks: 1,
			Patches: []PatchSnapshot{
				{ID: 0, Level: 0, Box: NewBox(0, 0, 7, 7)},
				{ID: 0, Level: 0, Box: NewBox(0, 0, 3, 3)}, // dup ID
			}},
		{Domain: NewBox(0, 0, 7, 7), Ratio: 2, MaxLevels: 3, NumRanks: 1,
			Patches: []PatchSnapshot{
				{ID: 0, Level: 0, Box: NewBox(0, 0, 7, 7)},
				{ID: 1, Level: 2, Box: NewBox(0, 0, 3, 3)}, // hole at level 1
			}},
	}
	for i, s := range cases {
		if _, err := FromSnapshot(s); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestNewHierarchyDecomposed(t *testing.T) {
	domain := NewBox(0, 0, 31, 31)
	boxes := SplitLargeBoxes([]Box{domain}, 128)
	owners := make([]int, len(boxes))
	for i := range owners {
		owners[i] = i % 3
	}
	h := NewHierarchyDecomposed(domain, 2, 2, 3, boxes, owners)
	if len(h.Level(0).Patches) != len(boxes) {
		t.Fatalf("patches = %d, want %d", len(h.Level(0).Patches), len(boxes))
	}
	if h.Level(0).NumCells() != domain.NumCells() {
		t.Errorf("cells = %d", h.Level(0).NumCells())
	}
	// Mismatched owners panics.
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	NewHierarchyDecomposed(domain, 2, 2, 3, boxes, owners[:1])
}
