package amr

import (
	"reflect"
	"testing"
)

// regriddedHierarchy builds a 3-level hierarchy under numRanks ranks.
func regriddedHierarchy(numRanks int) *Hierarchy {
	h := NewHierarchy(NewBox(0, 0, 99, 99), 2, 3, numRanks)
	f0 := NewFlagField(h.LevelDomain(0))
	f0.SetBox(NewBox(40, 40, 59, 59))
	f1 := NewFlagField(h.LevelDomain(1))
	f1.SetBox(NewBox(90, 90, 109, 109))
	h.Regrid([]*FlagField{f0, f1}, DefaultRegridOptions)
	return h
}

func TestRepartitionMatchesNativeLayout(t *testing.T) {
	// Refined-level box generation is P-invariant, so a hierarchy built
	// under P_old and repartitioned onto P_new must equal the hierarchy a
	// native P_new run builds from the same flags — boxes, owners, and
	// IDs alike. (This is the property elastic restart stands on.)
	for _, pOld := range []int{1, 2, 4} {
		snap := regriddedHierarchy(pOld).Snapshot()
		for _, pNew := range []int{1, 2, 3, 4} {
			got, err := Repartition(snap, pNew, GreedyBalancer{}, UniformWorkload)
			if err != nil {
				t.Fatalf("Repartition %d->%d: %v", pOld, pNew, err)
			}
			native := regriddedHierarchy(pNew)
			if !reflect.DeepEqual(got.Snapshot().Patches, native.Snapshot().Patches) {
				t.Errorf("repartition %d->%d layout differs from native:\n got %v\nwant %v",
					pOld, pNew, got.Snapshot().Patches, native.Snapshot().Patches)
			}
			if err := got.CheckProperNesting(); err != nil {
				t.Errorf("repartition %d->%d: %v", pOld, pNew, err)
			}
			if got.Regrids != snap.Regrids || got.NestingBuffer != snap.NestingBuffer {
				t.Errorf("repartition %d->%d lost counters", pOld, pNew)
			}
		}
	}
}

func TestRepartitionRejectsBadInput(t *testing.T) {
	snap := regriddedHierarchy(2).Snapshot()
	if _, err := Repartition(snap, 0, nil, nil); err == nil {
		t.Error("accepted 0 ranks")
	}
	bad := snap
	bad.Patches = nil
	if _, err := Repartition(bad, 2, nil, nil); err == nil {
		t.Error("accepted empty snapshot")
	}
}
