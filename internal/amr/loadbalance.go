package amr

import "sort"

// Load balancing and domain decomposition live in the Mesh subsystem,
// as the paper's design dictates. Two balancers are provided: a greedy
// largest-first bin packer (the default) and a Morton space-filling-
// curve partitioner that favors locality. The flame problem's stated
// policy — "patches are collated and distributed among processors to
// maximize load-balance while keeping parents and children on the same
// processors" — corresponds to greedy with a workload estimate that
// reflects chemistry cost.

// Workload estimates the relative cost of integrating a box on a level.
type Workload func(b Box, level int) float64

// UniformWorkload charges cost proportional to cell count — the
// "predictable part" of the paper's flame workload (diffusion).
func UniformWorkload(b Box, level int) float64 {
	return float64(b.NumCells())
}

// LoadBalancer assigns each box an owner rank.
type LoadBalancer interface {
	Assign(boxes []Box, level, nranks int, work Workload) []int
}

// GreedyBalancer sorts boxes by descending workload and repeatedly
// gives the next box to the least-loaded rank (LPT scheduling).
type GreedyBalancer struct{}

// Assign implements LoadBalancer.
func (GreedyBalancer) Assign(boxes []Box, level, nranks int, work Workload) []int {
	if work == nil {
		work = UniformWorkload
	}
	owners := make([]int, len(boxes))
	if nranks <= 1 {
		return owners
	}
	idx := make([]int, len(boxes))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return work(boxes[idx[a]], level) > work(boxes[idx[b]], level)
	})
	load := make([]float64, nranks)
	for _, i := range idx {
		r := 0
		for q := 1; q < nranks; q++ {
			if load[q] < load[r] {
				r = q
			}
		}
		owners[i] = r
		load[r] += work(boxes[i], level)
	}
	return owners
}

// SFCBalancer orders boxes along a Morton (Z-order) curve through
// their centroids and cuts the curve into nranks contiguous segments
// of approximately equal workload. Neighboring boxes tend to share a
// rank, reducing ghost traffic.
type SFCBalancer struct{}

// Assign implements LoadBalancer.
func (SFCBalancer) Assign(boxes []Box, level, nranks int, work Workload) []int {
	if work == nil {
		work = UniformWorkload
	}
	owners := make([]int, len(boxes))
	if nranks <= 1 || len(boxes) == 0 {
		return owners
	}
	idx := make([]int, len(boxes))
	keys := make([]uint64, len(boxes))
	for i, b := range boxes {
		cx := (b.Lo[0] + b.Hi[0]) / 2
		cy := (b.Lo[1] + b.Hi[1]) / 2
		keys[i] = mortonKey(uint32(cx), uint32(cy))
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	var total float64
	for i, b := range boxes {
		_ = i
		total += work(b, level)
	}
	target := total / float64(nranks)
	rank := 0
	var acc float64
	for _, i := range idx {
		w := work(boxes[i], level)
		if acc+w/2 > target*float64(rank+1) && rank < nranks-1 {
			rank++
		}
		owners[i] = rank
		acc += w
	}
	return owners
}

// mortonKey interleaves the low 32 bits of x and y.
func mortonKey(x, y uint32) uint64 {
	return spread(x) | spread(y)<<1
}

func spread(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// Imbalance returns (max load)/(mean load) for an assignment; 1.0 is
// perfect. Used by the load-balancer ablation bench.
func Imbalance(boxes []Box, owners []int, level, nranks int, work Workload) float64 {
	if work == nil {
		work = UniformWorkload
	}
	load := make([]float64, nranks)
	var total float64
	for i, b := range boxes {
		w := work(b, level)
		load[owners[i]] += w
		total += w
	}
	if total == 0 {
		return 1
	}
	mean := total / float64(nranks)
	maxL := 0.0
	for _, l := range load {
		if l > maxL {
			maxL = l
		}
	}
	return maxL / mean
}
