package amr

import (
	"reflect"
	"testing"
)

// neighborsBrute is the O(n²) reference the sweep must match.
func neighborsBrute(lv *Level, ghost int) [][]int {
	n := len(lv.Patches)
	out := make([][]int, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			if lv.Patches[a].Box.Grow(ghost).Intersects(lv.Patches[b].Box) {
				out[a] = append(out[a], b)
			}
		}
	}
	return out
}

func TestNeighborsMatchesBruteForce(t *testing.T) {
	// A ragged 2D tiling with gaps: patches sized and placed so some
	// pairs touch only corner-to-corner and some are separated by
	// exactly the ghost width.
	boxes := []Box{
		NewBox(0, 0, 9, 9), NewBox(10, 0, 19, 9), NewBox(22, 0, 30, 9),
		NewBox(0, 10, 9, 19), NewBox(12, 12, 19, 19),
		NewBox(0, 22, 30, 30), NewBox(35, 0, 40, 40),
	}
	lv := &Level{Domain: NewBox(0, 0, 40, 40)}
	for i, b := range boxes {
		lv.Patches = append(lv.Patches, &Patch{ID: i, Box: b})
	}
	for _, ghost := range []int{1, 2, 3, 5} {
		got := lv.Neighbors(ghost)
		want := neighborsBrute(lv, ghost)
		for i := range want {
			g, w := got[i], want[i]
			if len(g) == 0 && len(w) == 0 {
				continue
			}
			if !reflect.DeepEqual(g, w) {
				t.Errorf("ghost=%d patch %d: neighbors %v, want %v", ghost, i, g, w)
			}
		}
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	h := NewHierarchy(NewBox(0, 0, 47, 47), 2, 1, 6)
	lv := h.Level(0)
	nbr := lv.Neighbors(2)
	for a := range nbr {
		for _, b := range nbr[a] {
			found := false
			for _, back := range nbr[b] {
				if back == a {
					found = true
				}
			}
			if !found {
				t.Errorf("patch %d lists %d but not vice versa", a, b)
			}
		}
	}
}

func TestGenerationBumpsOnRegrid(t *testing.T) {
	h := NewHierarchy(NewBox(0, 0, 31, 31), 2, 2, 1)
	g0 := h.Generation()
	ff := NewFlagField(h.LevelDomain(0))
	ff.SetBox(NewBox(8, 8, 15, 15))
	h.Regrid([]*FlagField{ff}, DefaultRegridOptions)
	if h.Generation() == g0 {
		t.Error("Generation did not change across Regrid")
	}
}
