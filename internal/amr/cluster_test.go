package amr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFlagFieldSetGet(t *testing.T) {
	f := NewFlagField(NewBox(0, 0, 9, 9))
	f.Set(3, 4)
	f.Set(100, 100) // out of box: ignored
	if !f.Get(3, 4) || f.Get(4, 3) || f.Get(100, 100) {
		t.Error("flag get/set wrong")
	}
	if f.Count() != 1 {
		t.Errorf("count = %d", f.Count())
	}
}

func TestFlagFieldSetBoxAndBuffer(t *testing.T) {
	f := NewFlagField(NewBox(0, 0, 19, 19))
	f.SetBox(NewBox(5, 5, 6, 6))
	if f.Count() != 4 {
		t.Errorf("count after SetBox = %d", f.Count())
	}
	f.Buffer(1)
	if f.Count() != 16 { // 4x4 block
		t.Errorf("count after Buffer = %d", f.Count())
	}
	// Buffer clips at domain edges.
	g := NewFlagField(NewBox(0, 0, 4, 4))
	g.Set(0, 0)
	g.Buffer(2)
	if g.Count() != 9 { // 3x3 corner block
		t.Errorf("corner buffer count = %d", g.Count())
	}
}

func clusterCovers(f *FlagField, boxes []Box) bool {
	for j := f.Box.Lo[1]; j <= f.Box.Hi[1]; j++ {
		for i := f.Box.Lo[0]; i <= f.Box.Hi[0]; i++ {
			if !f.Get(i, j) {
				continue
			}
			covered := false
			for _, b := range boxes {
				if b.Contains(i, j) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
	}
	return true
}

func TestClusterSingleBlob(t *testing.T) {
	f := NewFlagField(NewBox(0, 0, 63, 63))
	f.SetBox(NewBox(10, 10, 20, 20))
	boxes := Cluster(f, DefaultClusterOptions)
	if len(boxes) != 1 || boxes[0] != NewBox(10, 10, 20, 20) {
		t.Errorf("boxes = %v", boxes)
	}
}

func TestClusterTwoSeparatedBlobs(t *testing.T) {
	f := NewFlagField(NewBox(0, 0, 99, 99))
	f.SetBox(NewBox(5, 5, 14, 14))
	f.SetBox(NewBox(60, 70, 69, 79))
	boxes := Cluster(f, DefaultClusterOptions)
	if len(boxes) != 2 {
		t.Fatalf("expected 2 boxes, got %v", boxes)
	}
	if !clusterCovers(f, boxes) {
		t.Error("cluster does not cover all flags")
	}
	// Each produced box should be one of the blobs exactly (signature
	// hole split then tight bounding).
	for _, b := range boxes {
		if b != NewBox(5, 5, 14, 14) && b != NewBox(60, 70, 69, 79) {
			t.Errorf("unexpected box %v", b)
		}
	}
}

func TestClusterEfficiency(t *testing.T) {
	// An L-shaped flag set cannot be covered efficiently by one box.
	f := NewFlagField(NewBox(0, 0, 63, 63))
	f.SetBox(NewBox(0, 0, 31, 7))
	f.SetBox(NewBox(0, 0, 7, 31))
	boxes := Cluster(f, ClusterOptions{Efficiency: 0.85, MaxBoxCells: 10000, MinWidth: 2})
	if !clusterCovers(f, boxes) {
		t.Fatal("cluster does not cover all flags")
	}
	flagged := f.Count()
	total := 0
	for _, b := range boxes {
		total += b.NumCells()
	}
	if eff := float64(flagged) / float64(total); eff < 0.80 {
		t.Errorf("aggregate efficiency = %.2f with boxes %v", eff, boxes)
	}
}

func TestClusterEmpty(t *testing.T) {
	f := NewFlagField(NewBox(0, 0, 31, 31))
	if boxes := Cluster(f, DefaultClusterOptions); boxes != nil {
		t.Errorf("cluster of empty field = %v", boxes)
	}
}

func TestClusterMaxBoxCells(t *testing.T) {
	f := NewFlagField(NewBox(0, 0, 127, 127))
	f.SetBox(f.Box) // everything flagged
	boxes := Cluster(f, ClusterOptions{Efficiency: 0.7, MaxBoxCells: 1024, MinWidth: 2})
	for _, b := range boxes {
		if b.NumCells() > 1024*2 { // allow slack of one split level
			t.Errorf("box %v too large (%d cells)", b, b.NumCells())
		}
	}
	if !clusterCovers(f, boxes) {
		t.Error("full-domain cluster dropped cells")
	}
}

// Property: clustering always covers every flagged cell, and every
// produced box contains at least one flag.
func TestClusterCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ff := NewFlagField(NewBox(0, 0, 47, 47))
		nBlobs := 1 + rng.Intn(4)
		for b := 0; b < nBlobs; b++ {
			x, y := rng.Intn(40), rng.Intn(40)
			ff.SetBox(NewBox(x, y, x+rng.Intn(8), y+rng.Intn(8)))
		}
		boxes := Cluster(ff, DefaultClusterOptions)
		if !clusterCovers(ff, boxes) {
			return false
		}
		for _, b := range boxes {
			if ff.countIn(b) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestChooseCutPrefersHole(t *testing.T) {
	// Signature with a hole at index 5.
	sig := []int{3, 3, 3, 3, 3, 0, 3, 3, 3, 3}
	if got := chooseCut(sig, 0, 2); got != 5 {
		t.Errorf("cut = %d, want 5", got)
	}
	// No hole: falls back to inflection or midpoint within bounds.
	sig2 := []int{1, 2, 8, 9, 9, 8, 2, 1}
	cut := chooseCut(sig2, 0, 2)
	if cut < 2 || cut > len(sig2)-2 {
		t.Errorf("cut %d violates min width", cut)
	}
}
