package chem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ccahydro/internal/cvode"
)

func TestCOMechanismShape(t *testing.T) {
	m := COH2Air()
	if m.NumSpecies() != 12 {
		t.Errorf("species = %d", m.NumSpecies())
	}
	if m.NumReactions() != 28 {
		t.Errorf("reactions = %d", m.NumReactions())
	}
}

func TestCarbonFormationEnthalpies(t *testing.T) {
	cases := []struct {
		sp   *Species
		want float64
	}{
		{&speciesCO, -110500},
		{&speciesCO2, -393500},
		{&speciesHCO, 42000},
	}
	for _, c := range cases {
		h := c.sp.HMolar(298.15)
		if math.Abs(h-c.want) > math.Max(4000, 0.03*math.Abs(c.want)) {
			t.Errorf("%s: Hf = %.0f, want ~%.0f", c.sp.Name, h, c.want)
		}
	}
}

func TestCOMechanismConservesMassAndElements(t *testing.T) {
	m := COH2Air()
	nC := map[string]float64{"CO": 1, "CO2": 1, "HCO": 1}
	nH := map[string]float64{"H2": 2, "H2O": 2, "OH": 1, "H": 1, "HO2": 1, "H2O2": 2, "HCO": 1}
	nO := map[string]float64{"O2": 2, "H2O": 1, "OH": 1, "O": 1, "HO2": 2, "H2O2": 2, "CO": 1, "CO2": 2, "HCO": 1}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		T := 800 + 1700*rng.Float64()
		conc := make([]float64, m.NumSpecies())
		for i := range conc {
			conc[i] = rng.Float64() * 5
		}
		wdot := make([]float64, m.NumSpecies())
		m.ProductionRates(T, conc, wdot)
		var mass, sc, sh, so, scale float64
		for i, sp := range m.Species {
			mass += wdot[i] * sp.W
			sc += wdot[i] * nC[sp.Name]
			sh += wdot[i] * nH[sp.Name]
			so += wdot[i] * nO[sp.Name]
			scale += math.Abs(wdot[i])
		}
		tol := 1e-9 * (scale + 1)
		return math.Abs(mass) < tol && math.Abs(sc) < tol &&
			math.Abs(sh) < tol && math.Abs(so) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMoistCOMixture(t *testing.T) {
	m := COH2Air()
	Y := m.StoichiometricMoistCOAir(0.02)
	var sum float64
	for _, v := range Y {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("sum Y = %v", sum)
	}
	if Y[m.SpeciesIndex("CO")] < 0.2 {
		t.Errorf("Y_CO = %v", Y[m.SpeciesIndex("CO")])
	}
	if Y[m.SpeciesIndex("H2")] <= 0 || Y[m.SpeciesIndex("H2")] > 0.01 {
		t.Errorf("Y_H2 = %v", Y[m.SpeciesIndex("H2")])
	}
}

// TestMoistCOIgnition integrates moist CO at elevated temperature: CO
// must oxidize to CO2 with a temperature rise, and the hydrogen trace
// is the catalyst (the Yetter-Dryer headline observation).
func TestMoistCOIgnition(t *testing.T) {
	m := COH2Air()
	ws := NewSourceWorkspace(m)
	n := m.NumSpecies()
	f := func(_ float64, y, ydot []float64) {
		T := y[0]
		if T < 200 {
			T = 200
		}
		rho := m.Density(y[1+n], T, y[1:1+n])
		ydot[0] = m.ConstVolumeSource(T, rho, y[1:1+n], ydot[1:1+n], ws)
		ydot[1+n] = m.DPDt(rho, T, ydot[0], y[1:1+n], ydot[1:1+n])
	}
	s := cvode.New(n+2, f, cvode.Options{RelTol: 1e-7, AbsTol: 1e-11})
	y0 := make([]float64, n+2)
	y0[0] = 1400
	copy(y0[1:1+n], m.StoichiometricMoistCOAir(0.05))
	y0[1+n] = PAtm
	s.Init(0, y0)
	if err := s.Integrate(5e-3); err != nil {
		t.Fatal(err)
	}
	y := s.Y()
	if y[0] < 2000 {
		t.Errorf("moist CO did not ignite: T = %v", y[0])
	}
	co2 := y[1+m.SpeciesIndex("CO2")]
	co := y[1+m.SpeciesIndex("CO")]
	if co2 < 0.2 {
		t.Errorf("Y_CO2 = %v, want substantial oxidation", co2)
	}
	if co > 0.15 {
		t.Errorf("Y_CO = %v, want mostly consumed", co)
	}
}

func TestH2AirSubsetUnchanged(t *testing.T) {
	// The CO mechanism's first 19 reactions are exactly the H2Air set:
	// rates at a shared state must agree (the reuse the paper leans on).
	h2 := H2Air()
	co := COH2Air()
	T := 1500.0
	concH2 := make([]float64, h2.NumSpecies())
	concCO := make([]float64, co.NumSpecies())
	for i := range concH2 {
		concH2[i] = 0.5 + float64(i)*0.1
		concCO[i] = concH2[i] // carbon species zero
	}
	wH2 := make([]float64, h2.NumSpecies())
	wCO := make([]float64, co.NumSpecies())
	h2.ProductionRates(T, concH2, wH2)
	co.ProductionRates(T, concCO, wCO)
	for i := range wH2 {
		if math.Abs(wH2[i]-wCO[i]) > 1e-9*(math.Abs(wH2[i])+1) {
			t.Errorf("species %s: %v vs %v", h2.Species[i].Name, wH2[i], wCO[i])
		}
	}
}
