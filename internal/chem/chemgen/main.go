// Command chemgen generates specialized Go chemistry kernels: for each
// mechanism in chem.AllMechanisms it walks the Reaction tables once, at
// generate time, and emits a source file of fully unrolled,
// allocation-free code — concentrations, modified-Arrhenius/third-body/
// equilibrium rate evaluation, production rates, both source-term
// closures, and the analytic dense Jacobians d(dT,dY)/d(T,Y) derived
// term by term from the stoichiometry. The emitted files register
// themselves with chem.RegisterKernel, so components resolve them by
// mechanism name at run time (interpreted fallback when absent).
//
// Run via go generate ./internal/chem/... (directive in the kernels
// package); output is gofmt-formatted and committed, with a staleness
// gate in scripts/check.sh.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ccahydro/internal/chem"
)

func main() {
	out := flag.String("out", ".", "output directory (the kernels package)")
	flag.Parse()
	for _, m := range chem.AllMechanisms() {
		src, err := Generate(m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chemgen: %s: %v\n", m.Name, err)
			os.Exit(1)
		}
		path := filepath.Join(*out, identifier(m.Name)+"_gen.go")
		if err := os.WriteFile(path, src, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "chemgen: %v\n", err)
			os.Exit(1)
		}
	}
}
