package chem

import (
	"sort"
	"sync"
)

// Kernel is a generated, allocation-free chemistry kernel specialized
// to one mechanism: fully unrolled rate evaluation plus analytic
// Jacobians of the source terms (the chemgen output, following the
// ChemGen approach of emitting per-mechanism source instead of
// interpreting the Reaction tables).
//
// A Kernel must agree with the interpreted Mechanism of the same name
// to rounding accuracy; the registry lets components resolve a kernel
// by mechanism name and fall back to the interpreted path when none is
// registered. Implementations are stateless (scratch lives on the
// stack), so a single Kernel value is safe for concurrent use.
type Kernel interface {
	// MechName is the canonical mechanism name (Mechanism.Name).
	MechName() string
	// NumSpecies returns the species count.
	NumSpecies() int
	// Concentrations converts (rho, Y) to molar concentrations.
	Concentrations(rho float64, Y, conc []float64)
	// ProductionRates fills wdot with net molar production rates at
	// (T, conc), like Mechanism.ProductionRates.
	ProductionRates(T float64, conc, wdot []float64)
	// ConstPressureSource fills dY and returns dT/dt at fixed pressure,
	// like Mechanism.ConstPressureSource (no workspace needed).
	ConstPressureSource(T, P float64, Y, dY []float64) float64
	// ConstVolumeSource fills dY and returns dT/dt at fixed density.
	ConstVolumeSource(T, rho float64, Y, dY []float64) float64
	// ConstPressureJacobian fills jac, row-major (n+1) x (n+1) over the
	// state [T, Y_0..Y_{n-1}], with the exact derivative of the
	// constant-pressure source (rho = rho(P, T, Y) eliminated).
	ConstPressureJacobian(T, P float64, Y, jac []float64)
	// ConstVolumeJacobian fills jac, row-major (n+1) x (n+1) over
	// [T, Y] at fixed rho. When drho is non-nil (length n+1) it also
	// receives the partial derivatives of [dT/dt, dY/dt] with respect
	// to rho, which callers embedding rho(state) need for the chain
	// rule (the 0D ignition modeler).
	ConstVolumeJacobian(T, rho float64, Y, jac, drho []float64)
}

var (
	kernelMu  sync.RWMutex
	kernelReg = map[string]Kernel{}
)

// RegisterKernel adds a generated kernel to the registry, keyed by its
// canonical mechanism name. Called from init functions of the
// generated package; re-registration replaces (last wins).
func RegisterKernel(k Kernel) {
	kernelMu.Lock()
	kernelReg[k.MechName()] = k
	kernelMu.Unlock()
}

// KernelFor returns the registered kernel for a canonical mechanism
// name, or nil when none is registered (callers fall back to the
// interpreted Mechanism).
func KernelFor(name string) Kernel {
	kernelMu.RLock()
	defer kernelMu.RUnlock()
	return kernelReg[name]
}

// KernelNames lists registered kernels in sorted order.
func KernelNames() []string {
	kernelMu.RLock()
	defer kernelMu.RUnlock()
	names := make([]string, 0, len(kernelReg))
	for n := range kernelReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RigidVesselJac builds an analytic Jacobian evaluator for the 0D
// rigid-vessel (constant mass and volume) ignition system over the
// state z = [T, Y_0..Y_{n-1}, P]: constant-volume chemistry with the
// density recovered from the instantaneous state, rho = P/(R T s),
// s = Σ Y_j/W_j, and the pressure equation dP/dt = R rho (f_T s + T d),
// d = Σ f_{Y_j}/W_j (Mechanism.DPDt).
//
// The kernel supplies the fixed-rho Jacobian plus the ∂/∂rho column;
// this closure applies the density chain rule and differentiates the
// pressure row in terms of the already-assembled temperature and
// species rows. Temperatures below 200 K are clamped, mirroring the
// drivers' cold-transient guard on the RHS.
//
// Each call returns an independent closure with private scratch, so
// concurrent solvers may each hold their own.
func RigidVesselJac(k Kernel, m *Mechanism) func(t float64, y, jac []float64) {
	n := m.NumSpecies()
	dim := n + 2
	sub := make([]float64, (n+1)*(n+1))
	drho := make([]float64, n+1)
	f := make([]float64, n+1)
	invW := make([]float64, n)
	for i := range m.Species {
		invW[i] = 1 / m.Species[i].W
	}
	return func(_ float64, y, jac []float64) {
		T := y[0]
		if T < 200 {
			T = 200
		}
		Y := y[1 : 1+n]
		P := y[1+n]
		var s float64
		for i, yi := range Y {
			s += yi * invW[i]
		}
		rho := P / (R * T * s)
		f[0] = k.ConstVolumeSource(T, rho, Y, f[1:])
		k.ConstVolumeJacobian(T, rho, Y, sub, drho)
		drdT := -rho / T
		drdP := rho / P
		// Temperature and species rows: fixed-rho derivative plus the
		// density chain (∂rho/∂Y_k = -rho/(W_k s)).
		for r := 0; r <= n; r++ {
			row := jac[r*dim : r*dim+dim]
			srow := sub[r*(n+1) : r*(n+1)+n+1]
			row[0] = srow[0] + drho[r]*drdT
			for c := 0; c < n; c++ {
				row[1+c] = srow[1+c] - drho[r]*rho*invW[c]/s
			}
			row[1+n] = drho[r] * drdP
		}
		// Pressure row, via the total rows assembled above.
		var d float64
		for j := 0; j < n; j++ {
			d += f[1+j] * invW[j]
		}
		A := f[0]*s + T*d
		dAdT := jac[0]*s + d
		dAdP := jac[n+1] * s
		for j := 0; j < n; j++ {
			dAdT += T * jac[(1+j)*dim] * invW[j]
			dAdP += T * jac[(1+j)*dim+1+n] * invW[j]
		}
		prow := jac[(1+n)*dim : (1+n)*dim+dim]
		prow[0] = R * (drdT*A + rho*dAdT)
		for c := 0; c < n; c++ {
			dAdYc := jac[1+c]*s + f[0]*invW[c]
			for j := 0; j < n; j++ {
				dAdYc += T * jac[(1+j)*dim+1+c] * invW[j]
			}
			prow[1+c] = R * (-rho*invW[c]/s*A + rho*dAdYc)
		}
		prow[1+n] = R * (drdP*A + rho*dAdP)
	}
}
