package chem

// Chemical source terms for the two closures the paper uses:
//
//   - constant pressure (open domain): the 2D reaction–diffusion flame,
//     where pressure is constant in time and space;
//   - constant volume (rigid walls): the 0D ignition problem, where the
//     dPdt component supplies the pressure term the problemModeler
//     adaptor adds to the heat equation.

// SourceWorkspace holds scratch arrays so hot loops don't allocate.
type SourceWorkspace struct {
	conc []float64
	wdot []float64
}

// NewSourceWorkspace sizes scratch for a mechanism.
func NewSourceWorkspace(m *Mechanism) *SourceWorkspace {
	return &SourceWorkspace{
		conc: make([]float64, m.NumSpecies()),
		wdot: make([]float64, m.NumSpecies()),
	}
}

// ConstPressureSource evaluates the reactive source at fixed pressure:
//
//	dY_i/dt = wdot_i W_i / rho
//	dT/dt   = -(Σ h_i wdot_i W_i) / (rho cp)
//
// Returns dT/dt and fills dY (length NumSpecies).
func (m *Mechanism) ConstPressureSource(T, P float64, Y []float64, dY []float64, ws *SourceWorkspace) float64 {
	rho := m.Density(P, T, Y)
	m.Concentrations(rho, Y, ws.conc)
	m.ProductionRates(T, ws.conc, ws.wdot)
	var hdot float64
	for i := range m.Species {
		wi := ws.wdot[i] * m.Species[i].W
		dY[i] = wi / rho
		hdot += m.Species[i].HMass(T) * wi
	}
	cp := m.CpMass(T, Y)
	return -hdot / (rho * cp)
}

// ConstVolumeSource evaluates the reactive source in a rigid adiabatic
// vessel (fixed rho):
//
//	dY_i/dt = wdot_i W_i / rho
//	dT/dt   = -(Σ u_i wdot_i W_i) / (rho cv)
//
// Returns dT/dt and fills dY.
func (m *Mechanism) ConstVolumeSource(T, rho float64, Y []float64, dY []float64, ws *SourceWorkspace) float64 {
	m.Concentrations(rho, Y, ws.conc)
	m.ProductionRates(T, ws.conc, ws.wdot)
	var udot float64
	for i := range m.Species {
		wi := ws.wdot[i] * m.Species[i].W
		dY[i] = wi / rho
		u := m.Species[i].HMass(T) - R*T/m.Species[i].W
		udot += u * wi
	}
	cv := m.CvMass(T, Y)
	return -udot / (rho * cv)
}

// DPDt computes the pressure time derivative in the rigid vessel from
// the current temperature/composition rates:
//
//	P = rho R T / W  =>  dP/dt = rho R (dT/dt / W + T d(1/W)/dt)
//
// where d(1/W)/dt = Σ dY_i/dt / W_i. This is the paper's dPdt
// component, used by the problemModeler adaptor.
func (m *Mechanism) DPDt(rho, T, dTdt float64, Y, dYdt []float64) float64 {
	var invW, dInvW float64
	for i := range m.Species {
		invW += Y[i] / m.Species[i].W
		dInvW += dYdt[i] / m.Species[i].W
	}
	return rho * R * (dTdt*invW + T*dInvW)
}
