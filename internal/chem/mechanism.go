package chem

import "fmt"

// Stoich is one (species, coefficient) pair in a reaction.
type Stoich struct {
	Index int
	Nu    float64
}

// Reaction is one (optionally reversible, optionally third-body)
// elementary reaction with modified-Arrhenius forward rate
// k = A T^n exp(-Ea / (R T)).
type Reaction struct {
	// Equation is the human-readable form (diagnostics only).
	Equation string
	// Reactants and Products with positive stoichiometric coefficients.
	Reactants, Products []Stoich
	// A has SI units (m^3/mol)^(order-1)/s where order counts reactant
	// molecules including the third body; N is dimensionless; Ea is
	// J/mol.
	A, N, Ea float64
	// ThirdBody marks +M reactions.
	ThirdBody bool
	// Enhanced lists non-unity third-body efficiencies by species index.
	Enhanced map[int]float64
	// Reversible reactions get a reverse rate from equilibrium.
	Reversible bool
}

// Mechanism is a closed set of species and reactions.
type Mechanism struct {
	Name      string
	Species   []Species
	Reactions []Reaction

	index map[string]int
}

// NumSpecies returns the species count.
func (m *Mechanism) NumSpecies() int { return len(m.Species) }

// NumReactions returns the reaction count.
func (m *Mechanism) NumReactions() int { return len(m.Reactions) }

// SpeciesIndex resolves a species name; panics on unknown names
// (mechanism construction bug).
func (m *Mechanism) SpeciesIndex(name string) int {
	i, ok := m.index[name]
	if !ok {
		panic(fmt.Sprintf("chem: species %q not in mechanism %q", name, m.Name))
	}
	return i
}

// SpeciesNames lists names in index order.
func (m *Mechanism) SpeciesNames() []string {
	out := make([]string, len(m.Species))
	for i, s := range m.Species {
		out[i] = s.Name
	}
	return out
}

func (m *Mechanism) buildIndex() {
	m.index = make(map[string]int, len(m.Species))
	for i, s := range m.Species {
		m.index[s.Name] = i
	}
}

// cal converts cal/mol to J/mol.
const cal = 4.184

// cm3 converts a rate constant prefactor from (cm^3/mol)^(order-1)/s to
// (m^3/mol)^(order-1)/s: each bimolecular collision partner contributes
// a factor 1e-6.
func cm3(a float64, order int) float64 {
	for i := 1; i < order; i++ {
		a *= 1e-6
	}
	return a
}

// rxn is a construction helper.
func rxn(m *Mechanism, eq string, reac, prod []Stoich, aCGS, n, eaCal float64, thirdBody bool, enhanced map[int]float64) Reaction {
	order := 0
	for _, s := range reac {
		order += int(s.Nu)
	}
	if thirdBody {
		order++
	}
	return Reaction{
		Equation:   eq,
		Reactants:  reac,
		Products:   prod,
		A:          cm3(aCGS, order),
		N:          n,
		Ea:         eaCal * cal,
		ThirdBody:  thirdBody,
		Enhanced:   enhanced,
		Reversible: true,
	}
}

// H2Air returns the 9-species, 19-reversible-reaction hydrogen–air
// mechanism (H2/O2 chain, HO2 and H2O2 chemistry, N2 inert), with rate
// parameters from the Mueller/Yetter/Dryer hydrogen kinetics lineage
// the paper cites. Species order: H2 O2 H2O OH H O HO2 H2O2 N2.
func H2Air() *Mechanism {
	m := &Mechanism{
		Name: "h2air-9sp-19rx",
		Species: []Species{
			speciesH2, speciesO2, speciesH2O, speciesOH,
			speciesH, speciesO, speciesHO2, speciesH2O2, speciesN2,
		},
	}
	m.buildIndex()
	iH2, iO2, iH2O, iOH := m.SpeciesIndex("H2"), m.SpeciesIndex("O2"), m.SpeciesIndex("H2O"), m.SpeciesIndex("OH")
	iH, iO, iHO2, iH2O2 := m.SpeciesIndex("H"), m.SpeciesIndex("O"), m.SpeciesIndex("HO2"), m.SpeciesIndex("H2O2")

	// Common third-body efficiencies (relative to N2 = 1).
	eff := map[int]float64{iH2: 2.5, iH2O: 12.0}

	s1 := func(i int) []Stoich { return []Stoich{{i, 1}} }
	s2 := func(i, j int) []Stoich {
		if i == j {
			return []Stoich{{i, 2}}
		}
		return []Stoich{{i, 1}, {j, 1}}
	}

	m.Reactions = []Reaction{
		// Chain reactions.
		rxn(m, "H+O2=O+OH", s2(iH, iO2), s2(iO, iOH), 3.547e15, -0.406, 16599, false, nil),
		rxn(m, "O+H2=H+OH", s2(iO, iH2), s2(iH, iOH), 0.508e5, 2.67, 6290, false, nil),
		rxn(m, "H2+OH=H2O+H", s2(iH2, iOH), s2(iH2O, iH), 0.216e9, 1.51, 3430, false, nil),
		rxn(m, "O+H2O=OH+OH", s2(iO, iH2O), s2(iOH, iOH), 2.97e6, 2.02, 13400, false, nil),
		// Dissociation / recombination (third body).
		rxn(m, "H2+M=H+H+M", s1(iH2), s2(iH, iH), 4.577e19, -1.40, 104380, true, eff),
		rxn(m, "O+O+M=O2+M", s2(iO, iO), s1(iO2), 6.165e15, -0.50, 0, true, eff),
		rxn(m, "O+H+M=OH+M", s2(iO, iH), s1(iOH), 4.714e18, -1.00, 0, true, eff),
		rxn(m, "H+OH+M=H2O+M", s2(iH, iOH), s1(iH2O), 3.800e22, -2.00, 0, true, eff),
		// HO2 formation and consumption (low-pressure-limit third-body
		// form of H+O2(+M)).
		rxn(m, "H+O2+M=HO2+M", s2(iH, iO2), s1(iHO2), 6.366e20, -1.72, 524.8, true, map[int]float64{iH2: 2.0, iH2O: 11.0, iO2: 0.78}),
		rxn(m, "HO2+H=H2+O2", s2(iHO2, iH), s2(iH2, iO2), 1.660e13, 0, 823, false, nil),
		rxn(m, "HO2+H=OH+OH", s2(iHO2, iH), s2(iOH, iOH), 7.079e13, 0, 295, false, nil),
		rxn(m, "HO2+O=O2+OH", s2(iHO2, iO), s2(iO2, iOH), 3.250e13, 0, 0, false, nil),
		rxn(m, "HO2+OH=H2O+O2", s2(iHO2, iOH), s2(iH2O, iO2), 2.890e13, 0, -497, false, nil),
		// H2O2 chemistry.
		rxn(m, "HO2+HO2=H2O2+O2", s2(iHO2, iHO2), s2(iH2O2, iO2), 4.200e14, 0, 11982, false, nil),
		rxn(m, "H2O2+M=OH+OH+M", s1(iH2O2), s2(iOH, iOH), 1.202e17, 0, 45500, true, eff),
		rxn(m, "H2O2+H=H2O+OH", s2(iH2O2, iH), s2(iH2O, iOH), 2.410e13, 0, 3970, false, nil),
		rxn(m, "H2O2+H=HO2+H2", s2(iH2O2, iH), s2(iHO2, iH2), 4.820e13, 0, 7950, false, nil),
		rxn(m, "H2O2+O=OH+HO2", s2(iH2O2, iO), s2(iOH, iHO2), 9.550e6, 2.0, 3970, false, nil),
		rxn(m, "H2O2+OH=HO2+H2O", s2(iH2O2, iOH), s2(iHO2, iH2O), 1.000e12, 0, 0, false, nil),
	}
	return m
}

// H2AirLite returns the light 8-species, 5-reaction mechanism used for
// the paper's Table 4 single-processor overhead study (deliberately
// cheap RHS so dispatch overhead is a large fraction of run time).
// Species order: H2 O2 H2O OH H O HO2 N2.
func H2AirLite() *Mechanism {
	m := &Mechanism{
		Name: "h2air-lite-8sp-5rx",
		Species: []Species{
			speciesH2, speciesO2, speciesH2O, speciesOH,
			speciesH, speciesO, speciesHO2, speciesN2,
		},
	}
	m.buildIndex()
	iH2, iO2, iH2O, iOH := m.SpeciesIndex("H2"), m.SpeciesIndex("O2"), m.SpeciesIndex("H2O"), m.SpeciesIndex("OH")
	iH, iO, iHO2 := m.SpeciesIndex("H"), m.SpeciesIndex("O"), m.SpeciesIndex("HO2")
	s2 := func(i, j int) []Stoich {
		if i == j {
			return []Stoich{{i, 2}}
		}
		return []Stoich{{i, 1}, {j, 1}}
	}
	s1 := func(i int) []Stoich { return []Stoich{{i, 1}} }
	m.Reactions = []Reaction{
		rxn(m, "H+O2=O+OH", s2(iH, iO2), s2(iO, iOH), 3.547e15, -0.406, 16599, false, nil),
		rxn(m, "O+H2=H+OH", s2(iO, iH2), s2(iH, iOH), 0.508e5, 2.67, 6290, false, nil),
		rxn(m, "H2+OH=H2O+H", s2(iH2, iOH), s2(iH2O, iH), 0.216e9, 1.51, 3430, false, nil),
		rxn(m, "H+O2+M=HO2+M", s2(iH, iO2), s1(iHO2), 6.366e20, -1.72, 524.8, true, map[int]float64{iH2: 2.0, iH2O: 11.0, iO2: 0.78}),
		rxn(m, "HO2+H=OH+OH", s2(iHO2, iH), s2(iOH, iOH), 7.079e13, 0, 295, false, nil),
	}
	return m
}

// AllMechanisms constructs every mechanism in the registry, in a fixed
// order. The chemgen generator walks this list, so adding a mechanism
// here is all it takes to get a generated kernel for it.
func AllMechanisms() []*Mechanism {
	return []*Mechanism{H2Air(), H2AirLite(), COH2Air()}
}

// ByName returns a mechanism by registry name ("h2air" or "h2air-lite").
func ByName(name string) (*Mechanism, error) {
	switch name {
	case "h2air", "h2air-9sp-19rx":
		return H2Air(), nil
	case "h2air-lite", "h2air-lite-8sp-5rx":
		return H2AirLite(), nil
	case "co-h2-air", "co-h2-air-12sp-28rx":
		return COH2Air(), nil
	}
	return nil, fmt.Errorf("chem: unknown mechanism %q", name)
}
