// Package kernels holds the chemgen-generated chemistry kernels: one
// source file per mechanism in chem.AllMechanisms, each a fully
// unrolled, allocation-free implementation of chem.Kernel with analytic
// Jacobians. Importing the package (usually blank, for the init-time
// chem.RegisterKernel calls) is what switches components from the
// interpreted Reaction-table path to generated code.
//
// Generated files are committed; scripts/check.sh regenerates and
// fails on any diff, so the emitted code can never drift from the
// mechanism tables.
package kernels

//go:generate go run ccahydro/internal/chem/chemgen -out .
