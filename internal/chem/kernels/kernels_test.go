package kernels

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ccahydro/internal/chem"
)

// randState draws a randomized thermochemical state: temperatures
// across both NASA-7 fit ranges, pressures around an atmosphere, and
// mass fractions spanning many orders of magnitude (cubing a uniform
// deviate makes trace species, the hard case for rate derivatives).
func randState(rng *rand.Rand, m *chem.Mechanism) (T, P, rho float64, Y []float64) {
	T = 300 + 2700*rng.Float64()
	P = chem.PAtm * (0.2 + 5*rng.Float64())
	Y = make([]float64, m.NumSpecies())
	for i := range Y {
		u := rng.Float64()
		Y[i] = u * u * u
	}
	chem.NormalizeY(Y)
	rho = m.Density(P, T, Y)
	return
}

// agree checks |a-b| <= rtol*(|a|+|b|) + abs.
func agree(a, b, rtol, abs float64) bool {
	return math.Abs(a-b) <= rtol*(math.Abs(a)+math.Abs(b))+abs
}

func maxAbs(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// TestKernelsRegistered requires a generated kernel for every mechanism
// the registry knows — the go:generate output must stay in lockstep
// with chem.AllMechanisms.
func TestKernelsRegistered(t *testing.T) {
	for _, m := range chem.AllMechanisms() {
		k := chem.KernelFor(m.Name)
		if k == nil {
			t.Fatalf("no generated kernel registered for %q (run go generate ./internal/chem/...)", m.Name)
		}
		if k.NumSpecies() != m.NumSpecies() {
			t.Fatalf("%s: kernel species %d != mechanism %d", m.Name, k.NumSpecies(), m.NumSpecies())
		}
	}
}

// TestKernelMatchesInterpreted drives generated kernels and the
// interpreted Mechanism over randomized states and requires agreement
// to rounding accuracy on production rates and both source closures.
func TestKernelMatchesInterpreted(t *testing.T) {
	for _, m := range chem.AllMechanisms() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			k := chem.KernelFor(m.Name)
			if k == nil {
				t.Fatalf("no kernel for %q", m.Name)
			}
			rng := rand.New(rand.NewSource(42))
			n := m.NumSpecies()
			ws := chem.NewSourceWorkspace(m)
			conc := make([]float64, n)
			kconc := make([]float64, n)
			wdot := make([]float64, n)
			kwdot := make([]float64, n)
			dY := make([]float64, n)
			kdY := make([]float64, n)
			for trial := 0; trial < 60; trial++ {
				T, P, rho, Y := randState(rng, m)

				m.Concentrations(rho, Y, conc)
				k.Concentrations(rho, Y, kconc)
				for i := range conc {
					if !agree(conc[i], kconc[i], 1e-12, 0) {
						t.Fatalf("trial %d: conc[%d] %g != %g", trial, i, kconc[i], conc[i])
					}
				}

				m.ProductionRates(T, conc, wdot)
				k.ProductionRates(T, conc, kwdot)
				scale := maxAbs(wdot)
				for i := range wdot {
					if !agree(wdot[i], kwdot[i], 1e-8, 1e-10*scale) {
						t.Fatalf("trial %d (T=%g): wdot[%d] kernel %g interpreted %g", trial, T, i, kwdot[i], wdot[i])
					}
				}

				dT := m.ConstPressureSource(T, P, Y, dY, ws)
				kdT := k.ConstPressureSource(T, P, Y, kdY)
				scale = math.Max(maxAbs(dY), math.Abs(dT))
				if !agree(dT, kdT, 1e-8, 1e-10*scale) {
					t.Fatalf("trial %d: constP dT kernel %g interpreted %g", trial, kdT, dT)
				}
				for i := range dY {
					if !agree(dY[i], kdY[i], 1e-8, 1e-10*scale) {
						t.Fatalf("trial %d: constP dY[%d] kernel %g interpreted %g", trial, i, kdY[i], dY[i])
					}
				}

				dT = m.ConstVolumeSource(T, rho, Y, dY, ws)
				kdT = k.ConstVolumeSource(T, rho, Y, kdY)
				scale = math.Max(maxAbs(dY), math.Abs(dT))
				if !agree(dT, kdT, 1e-8, 1e-10*scale) {
					t.Fatalf("trial %d: constV dT kernel %g interpreted %g", trial, kdT, dT)
				}
				for i := range dY {
					if !agree(dY[i], kdY[i], 1e-8, 1e-10*scale) {
						t.Fatalf("trial %d: constV dY[%d] kernel %g interpreted %g", trial, i, kdY[i], dY[i])
					}
				}
			}
		})
	}
}

// fdJacobian central-differences a source closure F: x -> (n+1)-vector
// over the state x = [T, Y...], the reference the analytic Jacobians
// must reproduce.
func fdJacobian(x []float64, eval func(x, f []float64)) []float64 {
	dim := len(x)
	jac := make([]float64, dim*dim)
	fp := make([]float64, dim)
	fm := make([]float64, dim)
	xp := make([]float64, dim)
	h3 := math.Cbrt(2.22e-16)
	for j := 0; j < dim; j++ {
		// The floor sets the step from the variable's natural scale, not
		// its current value: a trace mass fraction still moves the state
		// through the density chain, and a cbrt(eps)*Y step there is
		// below rho's roundoff quantum.
		floor := 0.1
		if j == 0 {
			floor = 1 // temperature column: Kelvin scale
		}
		h := h3 * math.Max(math.Abs(x[j]), floor)
		copy(xp, x)
		xp[j] = x[j] + h
		hi := xp[j]
		eval(xp, fp)
		xp[j] = x[j] - h
		lo := xp[j]
		eval(xp, fm)
		inv := 1 / (hi - lo) // exact spanned width as stored
		for i := 0; i < dim; i++ {
			jac[i*dim+j] = (fp[i] - fm[i]) * inv
		}
	}
	return jac
}

// checkJac compares an analytic Jacobian against its FD reference with
// a per-row absolute floor (central differences bottom out around
// cbrt(eps)^2 of the row scale).
func checkJac(t *testing.T, label string, dim int, ja, jfd []float64) {
	t.Helper()
	for r := 0; r < dim; r++ {
		var rowScale float64
		for c := 0; c < dim; c++ {
			if a := math.Abs(jfd[r*dim+c]); a > rowScale {
				rowScale = a
			}
		}
		for c := 0; c < dim; c++ {
			a, b := ja[r*dim+c], jfd[r*dim+c]
			if !agree(a, b, 2e-4, 1e-6*rowScale+1e-300) {
				t.Fatalf("%s: jac[%d][%d] analytic %g fd %g (row scale %g)", label, r, c, a, b, rowScale)
			}
		}
	}
}

// TestAnalyticJacobians verifies both closure Jacobians (and the
// constant-volume rho column) against central differences of the
// kernel's own source evaluations, per mechanism, over random states.
func TestAnalyticJacobians(t *testing.T) {
	for _, m := range chem.AllMechanisms() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			k := chem.KernelFor(m.Name)
			if k == nil {
				t.Fatalf("no kernel for %q", m.Name)
			}
			rng := rand.New(rand.NewSource(7))
			n := m.NumSpecies()
			dim := n + 1
			jac := make([]float64, dim*dim)
			drho := make([]float64, dim)
			x := make([]float64, dim)
			for trial := 0; trial < 12; trial++ {
				T, P, rho, Y := randState(rng, m)
				x[0] = T
				copy(x[1:], Y)

				k.ConstPressureJacobian(T, P, Y, jac)
				fd := fdJacobian(x, func(x, f []float64) {
					f[0] = k.ConstPressureSource(x[0], P, x[1:], f[1:])
				})
				checkJac(t, fmt.Sprintf("%s constP trial %d", m.Name, trial), dim, jac, fd)

				k.ConstVolumeJacobian(T, rho, Y, jac, drho)
				fd = fdJacobian(x, func(x, f []float64) {
					f[0] = k.ConstVolumeSource(x[0], rho, x[1:], f[1:])
				})
				checkJac(t, fmt.Sprintf("%s constV trial %d", m.Name, trial), dim, jac, fd)

				// rho column by scalar central difference.
				h := math.Cbrt(2.22e-16) * rho
				fp := make([]float64, dim)
				fm := make([]float64, dim)
				fp[0] = k.ConstVolumeSource(T, rho+h, Y, fp[1:])
				fm[0] = k.ConstVolumeSource(T, rho-h, Y, fm[1:])
				var scale float64
				for i := 0; i < dim; i++ {
					if a := math.Abs((fp[i] - fm[i]) / (2 * h)); a > scale {
						scale = a
					}
				}
				for i := 0; i < dim; i++ {
					fd := (fp[i] - fm[i]) / (2 * h)
					if !agree(drho[i], fd, 2e-4, 1e-6*scale+1e-300) {
						t.Fatalf("%s trial %d: drho[%d] analytic %g fd %g", m.Name, trial, i, drho[i], fd)
					}
				}
			}
		})
	}
}

// TestKernelAllocFree pins the allocation-free property of the hot
// paths: every scratch array must stay on the stack.
func TestKernelAllocFree(t *testing.T) {
	m := chem.H2Air()
	k := chem.KernelFor(m.Name)
	if k == nil {
		t.Fatal("no kernel for h2air")
	}
	n := m.NumSpecies()
	Y := m.StoichiometricH2Air()
	dY := make([]float64, n)
	jac := make([]float64, (n+1)*(n+1))
	if a := testing.AllocsPerRun(100, func() {
		k.ConstPressureSource(1500, chem.PAtm, Y, dY)
	}); a != 0 {
		t.Errorf("ConstPressureSource allocates %.1f/op", a)
	}
	if a := testing.AllocsPerRun(100, func() {
		k.ConstPressureJacobian(1500, chem.PAtm, Y, jac)
	}); a != 0 {
		t.Errorf("ConstPressureJacobian allocates %.1f/op", a)
	}
}

// TestRigidVesselJacobian verifies chem.RigidVesselJac — the 0D
// ignition system's (n+2)x(n+2) Jacobian over [T, Y, P] with the
// density chain and the pressure row — against central differences of
// the full rigid-vessel RHS.
func TestRigidVesselJacobian(t *testing.T) {
	for _, m := range chem.AllMechanisms() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			k := chem.KernelFor(m.Name)
			if k == nil {
				t.Fatalf("no kernel for %q", m.Name)
			}
			rng := rand.New(rand.NewSource(13))
			n := m.NumSpecies()
			dim := n + 2
			rhs := func(z, f []float64) {
				T := z[0]
				if T < 200 {
					T = 200
				}
				Y := z[1 : 1+n]
				P := z[1+n]
				rho := m.Density(P, T, Y)
				f[0] = k.ConstVolumeSource(T, rho, Y, f[1:1+n])
				f[1+n] = m.DPDt(rho, T, f[0], Y, f[1:1+n])
			}
			jfn := chem.RigidVesselJac(k, m)
			jac := make([]float64, dim*dim)
			for trial := 0; trial < 8; trial++ {
				T, P, _, Y := randState(rng, m)
				z := make([]float64, dim)
				z[0] = T
				copy(z[1:], Y)
				z[1+n] = P
				jfn(0, z, jac)
				fd := make([]float64, dim*dim)
				fp := make([]float64, dim)
				fm := make([]float64, dim)
				zp := make([]float64, dim)
				h3 := math.Cbrt(2.22e-16)
				for j := 0; j < dim; j++ {
					floor := 0.1
					if j == 0 {
						floor = 1
					}
					if j == dim-1 {
						floor = chem.PAtm
					}
					h := h3 * math.Max(math.Abs(z[j]), floor)
					copy(zp, z)
					zp[j] = z[j] + h
					hi := zp[j]
					rhs(zp, fp)
					zp[j] = z[j] - h
					lo := zp[j]
					rhs(zp, fm)
					inv := 1 / (hi - lo)
					for i := 0; i < dim; i++ {
						fd[i*dim+j] = (fp[i] - fm[i]) * inv
					}
				}
				checkJac(t, fmt.Sprintf("%s rigid trial %d", m.Name, trial), dim, jac, fd)
			}
		})
	}
}
