package kernels

// Closure-specific Jacobian assembly, shared by every generated kernel.
// The unrolled ProdRatesJac cores supply the chemistry triplet at fixed
// (T, c) — net rates w, temperature derivatives dwdT, and the
// concentration Jacobian jw[i*n+j] = ∂wdot_i/∂c_j — and the helpers
// below apply the chain rules of the two thermodynamic closures to
// produce d(dT/dt, dY/dt)/d(T, Y). All scratch (civ, fY) is provided by
// the caller so the whole path stays allocation-free.
//
// Both helpers work in the dimensionless NASA-7 forms (hRT = h/RT,
// cpR = cp/R): the gas constant cancels between the enthalpy flux and
// the heat capacity, e.g. dT/dt|_P = -T Σ hRT_i w_i / (rho Σ Y_j cpR_j/W_j).

// assembleConstPressureJac fills jac, row-major (n+1)x(n+1) over
// [T, Y], with the exact derivative of the constant-pressure source at
// fixed P, where rho = P/(R T Σ Y_j/W_j) is a function of the state:
//
//	∂c_i/∂T   = -c_i/T                 (through rho)
//	∂c_i/∂Y_k = rho δ_ik/W_k - c_i (1/W_k)/s
//
// so every entry carries both the direct reaction term and the density
// chain term.
func assembleConstPressureJac(T, rho, s float64, W, invW, Y, c, cpR, dcpR, hRT, w, dwdT, jw, civ, fY, jac []float64) {
	n := len(W)
	dim := n + 1
	jac = jac[:dim*dim]
	invT := 1 / T
	invs := 1 / s
	invRho := 1 / rho

	// civ_i = Σ_j Jw_ij c_j is the response of wdot_i to a uniform
	// relative dilation of all concentrations — the shape every density
	// chain term takes. fY_i = dY_i/dt.
	for i := 0; i < n; i++ {
		var sum float64
		row := jw[i*n : i*n+n]
		for j, cj := range c {
			sum += row[j] * cj
		}
		civ[i] = sum
		fY[i] = w[i] * W[i] * invRho
	}

	var H, cpm, cpmT, dHdT, hciv float64
	for i := 0; i < n; i++ {
		H += hRT[i] * w[i]
		cpm += Y[i] * cpR[i] * invW[i]
		cpmT += Y[i] * dcpR[i] * invW[i]
		// d(hRT)/dT = (cpR - hRT)/T, plus wdot's total T-derivative.
		dHdT += (cpR[i]-hRT[i])*invT*w[i] + hRT[i]*(dwdT[i]-civ[i]*invT)
		hciv += hRT[i] * civ[i]
	}
	D := rho * cpm
	invD := 1 / D
	dDdT := -D*invT + rho*cpmT

	// Row 0: dT/dt = -T H / D.
	jac[0] = -((H+T*dHdT)*D - T*H*dDdT) * invD * invD
	for k := 0; k < n; k++ {
		var hjw float64
		for i := 0; i < n; i++ {
			hjw += hRT[i] * jw[i*n+k]
		}
		dHdYk := invW[k] * (rho*hjw - hciv*invs)
		dDdYk := invW[k] * (rho*cpR[k] - D*invs)
		jac[1+k] = -T * (dHdYk*D - H*dDdYk) * invD * invD
	}

	// Species rows: dY_i/dt = w_i W_i / rho.
	for i := 0; i < n; i++ {
		row := jac[(1+i)*dim : (1+i)*dim+dim]
		row[0] = W[i]*invRho*(dwdT[i]-civ[i]*invT) + fY[i]*invT
		for k := 0; k < n; k++ {
			row[1+k] = W[i]*invW[k]*jw[i*n+k] - invW[k]*invs*(W[i]*invRho*civ[i]-fY[i])
		}
	}
}

// assembleConstVolumeJac fills jac, row-major (n+1)x(n+1) over [T, Y],
// with the derivative of the constant-volume source at fixed rho (the
// concentrations depend on the state only through c_i = rho Y_i/W_i).
// When drho is non-nil (length n+1) it receives ∂[dT/dt, dY/dt]/∂rho,
// the extra column callers with state-dependent density need.
func assembleConstVolumeJac(T, rho float64, W, invW, Y, c, cpR, dcpR, hRT, w, dwdT, jw, civ, fY, jac, drho []float64) {
	n := len(W)
	dim := n + 1
	jac = jac[:dim*dim]
	invT := 1 / T
	invRho := 1 / rho

	for i := 0; i < n; i++ {
		var sum float64
		row := jw[i*n : i*n+n]
		for j, cj := range c {
			sum += row[j] * cj
		}
		civ[i] = sum
		fY[i] = w[i] * W[i] * invRho
	}

	// Internal-energy forms: u/RT = hRT - 1, cv/R = cpR - 1.
	var U, cvm, cvmT, UT float64
	for i := 0; i < n; i++ {
		U += (hRT[i] - 1) * w[i]
		cvm += Y[i] * (cpR[i] - 1) * invW[i]
		cvmT += Y[i] * dcpR[i] * invW[i]
		UT += (cpR[i]-hRT[i])*invT*w[i] + (hRT[i]-1)*dwdT[i]
	}
	den := 1 / (rho * cvm * cvm)

	// Row 0: dT/dt = -T U / (rho cvm).
	jac[0] = -((U+T*UT)*cvm - T*U*cvmT) * den
	for k := 0; k < n; k++ {
		var ujw float64
		for i := 0; i < n; i++ {
			ujw += (hRT[i] - 1) * jw[i*n+k]
		}
		UYk := rho * invW[k] * ujw
		cvmYk := (cpR[k] - 1) * invW[k]
		jac[1+k] = -T * (UYk*cvm - U*cvmYk) * den
	}

	// Species rows.
	for i := 0; i < n; i++ {
		row := jac[(1+i)*dim : (1+i)*dim+dim]
		row[0] = W[i] * invRho * dwdT[i]
		for k := 0; k < n; k++ {
			row[1+k] = W[i] * invW[k] * jw[i*n+k]
		}
	}

	if drho != nil {
		drho = drho[:dim]
		// ∂c_i/∂rho = c_i/rho, so wdot responds with civ_i/rho.
		var ucv float64
		for i := 0; i < n; i++ {
			ucv += (hRT[i] - 1) * civ[i]
		}
		drho[0] = -T * (ucv - U) * invRho * invRho / cvm
		for i := 0; i < n; i++ {
			drho[1+i] = (W[i]*civ[i]*invRho - fY[i]) * invRho
		}
	}
}
