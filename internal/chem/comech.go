package chem

// The mechanism the paper cites ([26] Yetter, Dryer, Rabitz) is a
// comprehensive CO/H2/O2 mechanism; the flame runs use its H2–air
// subset. This file supplies the full carbon-bearing system: the H2–air
// core plus CO/CO2/HCO chemistry, for moist-CO and syngas problems.

// NASA-7 data from the GRI-Mech 3.0 thermodynamic database.
var (
	speciesCO = Species{
		Name: "CO", W: 28.010e-3, Tmid: 1000,
		Low: [7]float64{3.57953347e+00, -6.10353680e-04, 1.01681433e-06,
			9.07005884e-10, -9.04424499e-13, -1.43440860e+04, 3.50840928e+00},
		High: [7]float64{2.71518561e+00, 2.06252743e-03, -9.98825771e-07,
			2.30053008e-10, -2.03647716e-14, -1.41518724e+04, 7.81868772e+00},
	}
	speciesCO2 = Species{
		Name: "CO2", W: 44.009e-3, Tmid: 1000,
		Low: [7]float64{2.35677352e+00, 8.98459677e-03, -7.12356269e-06,
			2.45919022e-09, -1.43699548e-13, -4.83719697e+04, 9.90105222e+00},
		High: [7]float64{3.85746029e+00, 4.41437026e-03, -2.21481404e-06,
			5.23490188e-10, -4.72084164e-14, -4.87591660e+04, 2.27163806e+00},
	}
	speciesHCO = Species{
		Name: "HCO", W: 29.018e-3, Tmid: 1000,
		Low: [7]float64{4.22118584e+00, -3.24392532e-03, 1.37799446e-05,
			-1.33144093e-08, 4.33768865e-12, 3.83956496e+03, 3.39437243e+00},
		High: [7]float64{2.77217438e+00, 4.95695526e-03, -2.48445613e-06,
			8.26441220e-10, -1.56735760e-13, 4.01191815e+03, 9.79834492e+00},
	}
)

// COH2Air returns the 12-species CO/H2/O2/N2 mechanism: the 19
// hydrogen reactions of H2Air plus 9 carbon reactions (CO oxidation
// through CO+OH, plus the HCO channel). Species order: the H2Air nine
// followed by CO, CO2, HCO.
func COH2Air() *Mechanism {
	base := H2Air()
	m := &Mechanism{
		Name:    "co-h2-air-12sp-28rx",
		Species: append(append([]Species{}, base.Species...), speciesCO, speciesCO2, speciesHCO),
	}
	m.buildIndex()
	// The hydrogen reactions carry over verbatim (indices are shared
	// because the new species append after the old ones).
	m.Reactions = append(m.Reactions, base.Reactions...)

	iH2, iO2, iH2O, iOH := m.SpeciesIndex("H2"), m.SpeciesIndex("O2"), m.SpeciesIndex("H2O"), m.SpeciesIndex("OH")
	iH, iO, iHO2 := m.SpeciesIndex("H"), m.SpeciesIndex("O"), m.SpeciesIndex("HO2")
	iCO, iCO2, iHCO := m.SpeciesIndex("CO"), m.SpeciesIndex("CO2"), m.SpeciesIndex("HCO")

	eff := map[int]float64{iH2: 2.5, iH2O: 12.0, iCO: 1.9, iCO2: 3.8}
	s1 := func(i int) []Stoich { return []Stoich{{i, 1}} }
	s2 := func(i, j int) []Stoich {
		if i == j {
			return []Stoich{{i, 2}}
		}
		return []Stoich{{i, 1}, {j, 1}}
	}

	m.Reactions = append(m.Reactions,
		// CO oxidation.
		rxn(m, "CO+OH=CO2+H", s2(iCO, iOH), s2(iCO2, iH), 4.760e7, 1.228, 70, false, nil),
		rxn(m, "CO+O+M=CO2+M", s2(iCO, iO), s1(iCO2), 6.020e14, 0, 3000, true, eff),
		rxn(m, "CO+O2=CO2+O", s2(iCO, iO2), s2(iCO2, iO), 2.500e12, 0, 47800, false, nil),
		rxn(m, "CO+HO2=CO2+OH", s2(iCO, iHO2), s2(iCO2, iOH), 1.500e14, 0, 23600, false, nil),
		// Formyl channel.
		rxn(m, "HCO+M=H+CO+M", s1(iHCO), s2(iH, iCO), 1.870e17, -1.0, 17000, true, eff),
		rxn(m, "HCO+H=CO+H2", s2(iHCO, iH), s2(iCO, iH2), 7.340e13, 0, 0, false, nil),
		rxn(m, "HCO+O=CO+OH", s2(iHCO, iO), s2(iCO, iOH), 3.020e13, 0, 0, false, nil),
		rxn(m, "HCO+OH=CO+H2O", s2(iHCO, iOH), s2(iCO, iH2O), 3.020e13, 0, 0, false, nil),
		rxn(m, "HCO+O2=CO+HO2", s2(iHCO, iO2), s2(iCO, iHO2), 1.204e10, 0.807, -727, false, nil),
	)
	return m
}

// StoichiometricMoistCOAir returns mass fractions for a stoichiometric
// moist-CO/air mixture: CO with phi=1 in air plus trace H2 (the classic
// Yetter–Dryer configuration — dry CO barely burns; the hydrogen
// radical pool carries the oxidation through CO+OH).
func (m *Mechanism) StoichiometricMoistCOAir(h2MoleFrac float64) []float64 {
	X := make([]float64, m.NumSpecies())
	// CO + 1/2 O2: per mole CO, 0.5 O2 and 1.88 N2.
	nCO := 1.0
	nH2 := h2MoleFrac * nCO
	nO2 := 0.5*nCO + 0.5*nH2
	nN2 := 3.76 * nO2
	tot := nCO + nH2 + nO2 + nN2
	X[m.SpeciesIndex("CO")] = nCO / tot
	X[m.SpeciesIndex("H2")] = nH2 / tot
	X[m.SpeciesIndex("O2")] = nO2 / tot
	X[m.SpeciesIndex("N2")] = nN2 / tot
	Y := make([]float64, m.NumSpecies())
	m.MassFractions(X, Y)
	return Y
}
