// Package chem implements gas-phase thermochemistry: NASA-7 polynomial
// thermodynamics, reversible Arrhenius kinetics with third bodies, and
// the H2–air reaction mechanisms the paper's ThermoChemistry component
// wraps (a 9-species/19-reaction hydrogen mechanism for the ignition
// and flame problems, and the light 8-species/5-reaction variant used
// for the Table 4 overhead study).
//
// All quantities are SI: J, mol, kg, m, s, K. Rate data quoted in the
// combustion literature's cm–mol–cal units are converted at mechanism
// construction time.
package chem

import "math"

// Universal gas constant, J/(mol K).
const R = 8.31446261815324

// PAtm is one standard atmosphere in Pa (thermodynamic standard state).
const PAtm = 101325.0

// Species couples a name, molar mass and NASA-7 thermodynamic fit.
type Species struct {
	Name string
	// W is the molar mass in kg/mol.
	W float64
	// Low and High are the 7 NASA polynomial coefficients below and
	// above Tmid.
	Low, High [7]float64
	// Tmid separates the two fit ranges (usually 1000 K).
	Tmid float64
}

func (s *Species) coeffs(T float64) *[7]float64 {
	if T < s.Tmid {
		return &s.Low
	}
	return &s.High
}

// CpR returns cp/R (dimensionless molar heat capacity).
func (s *Species) CpR(T float64) float64 {
	a := s.coeffs(T)
	return a[0] + T*(a[1]+T*(a[2]+T*(a[3]+T*a[4])))
}

// HRT returns h/(R T), the dimensionless molar enthalpy including the
// heat of formation.
func (s *Species) HRT(T float64) float64 {
	a := s.coeffs(T)
	return a[0] + T*(a[1]/2+T*(a[2]/3+T*(a[3]/4+T*a[4]/5))) + a[5]/T
}

// SR returns s0/R, the dimensionless standard-state molar entropy.
func (s *Species) SR(T float64) float64 {
	a := s.coeffs(T)
	return a[0]*math.Log(T) + T*(a[1]+T*(a[2]/2+T*(a[3]/3+T*a[4]/4))) + a[6]
}

// CpMolar returns cp in J/(mol K).
func (s *Species) CpMolar(T float64) float64 { return R * s.CpR(T) }

// HMolar returns h in J/mol.
func (s *Species) HMolar(T float64) float64 { return R * T * s.HRT(T) }

// GRT returns g/(R T) = h/(R T) - s/R (dimensionless Gibbs energy).
func (s *Species) GRT(T float64) float64 { return s.HRT(T) - s.SR(T) }

// CpMass returns cp in J/(kg K).
func (s *Species) CpMass(T float64) float64 { return s.CpMolar(T) / s.W }

// HMass returns h in J/kg.
func (s *Species) HMass(T float64) float64 { return s.HMolar(T) / s.W }

// NASA-7 coefficient data from the GRI-Mech 3.0 thermodynamic database
// (valid roughly 200/300 K to 3500/5000 K with Tmid = 1000 K).
var (
	speciesH2 = Species{
		Name: "H2", W: 2.016e-3, Tmid: 1000,
		Low: [7]float64{2.34433112e+00, 7.98052075e-03, -1.94781510e-05,
			2.01572094e-08, -7.37611761e-12, -9.17935173e+02, 6.83010238e-01},
		High: [7]float64{3.33727920e+00, -4.94024731e-05, 4.99456778e-07,
			-1.79566394e-10, 2.00255376e-14, -9.50158922e+02, -3.20502331e+00},
	}
	speciesO2 = Species{
		Name: "O2", W: 31.998e-3, Tmid: 1000,
		Low: [7]float64{3.78245636e+00, -2.99673416e-03, 9.84730201e-06,
			-9.68129509e-09, 3.24372837e-12, -1.06394356e+03, 3.65767573e+00},
		High: [7]float64{3.28253784e+00, 1.48308754e-03, -7.57966669e-07,
			2.09470555e-10, -2.16717794e-14, -1.08845772e+03, 5.45323129e+00},
	}
	speciesH2O = Species{
		Name: "H2O", W: 18.015e-3, Tmid: 1000,
		Low: [7]float64{4.19864056e+00, -2.03643410e-03, 6.52040211e-06,
			-5.48797062e-09, 1.77197817e-12, -3.02937267e+04, -8.49032208e-01},
		High: [7]float64{3.03399249e+00, 2.17691804e-03, -1.64072518e-07,
			-9.70419870e-11, 1.68200992e-14, -3.00042971e+04, 4.96677010e+00},
	}
	speciesOH = Species{
		Name: "OH", W: 17.007e-3, Tmid: 1000,
		Low: [7]float64{3.99201543e+00, -2.40131752e-03, 4.61793841e-06,
			-3.88113333e-09, 1.36411470e-12, 3.61508056e+03, -1.03925458e-01},
		High: [7]float64{3.09288767e+00, 5.48429716e-04, 1.26505228e-07,
			-8.79461556e-11, 1.17412376e-14, 3.85865700e+03, 4.47669610e+00},
	}
	speciesH = Species{
		Name: "H", W: 1.008e-3, Tmid: 1000,
		Low: [7]float64{2.50000000e+00, 7.05332819e-13, -1.99591964e-15,
			2.30081632e-18, -9.27732332e-22, 2.54736599e+04, -4.46682853e-01},
		High: [7]float64{2.50000001e+00, -2.30842973e-11, 1.61561948e-14,
			-4.73515235e-18, 4.98197357e-22, 2.54736599e+04, -4.46682914e-01},
	}
	speciesO = Species{
		Name: "O", W: 15.999e-3, Tmid: 1000,
		Low: [7]float64{3.16826710e+00, -3.27931884e-03, 6.64306396e-06,
			-6.12806624e-09, 2.11265971e-12, 2.91222592e+04, 2.05193346e+00},
		High: [7]float64{2.56942078e+00, -8.59741137e-05, 4.19484589e-08,
			-1.00177799e-11, 1.22833691e-15, 2.92175791e+04, 4.78433864e+00},
	}
	speciesHO2 = Species{
		Name: "HO2", W: 33.006e-3, Tmid: 1000,
		Low: [7]float64{4.30179801e+00, -4.74912051e-03, 2.11582891e-05,
			-2.42763894e-08, 9.29225124e-12, 2.94808040e+02, 3.71666245e+00},
		High: [7]float64{4.01721090e+00, 2.23982013e-03, -6.33658150e-07,
			1.14246370e-10, -1.07908535e-14, 1.11856713e+02, 3.78510215e+00},
	}
	speciesH2O2 = Species{
		Name: "H2O2", W: 34.014e-3, Tmid: 1000,
		Low: [7]float64{4.27611269e+00, -5.42822417e-04, 1.67335701e-05,
			-2.15770813e-08, 8.62454363e-12, -1.77025821e+04, 3.43505074e+00},
		High: [7]float64{4.16500285e+00, 4.90831694e-03, -1.90139225e-06,
			3.71185986e-10, -2.87908305e-14, -1.78617877e+04, 2.91615662e+00},
	}
	speciesN2 = Species{
		Name: "N2", W: 28.014e-3, Tmid: 1000,
		Low: [7]float64{3.29867700e+00, 1.40824040e-03, -3.96322200e-06,
			5.64151500e-09, -2.44485400e-12, -1.02089990e+03, 3.95037200e+00},
		High: [7]float64{2.92664000e+00, 1.48797680e-03, -5.68476000e-07,
			1.00970380e-10, -6.75335100e-15, -9.22797700e+02, 5.98052800e+00},
	}
)
