package chem

// Mixture-level thermodynamic helpers over mass fractions Y (length
// NumSpecies, summing to 1).

// MeanW returns the mean molar mass in kg/mol: 1/Σ(Y_i/W_i).
func (m *Mechanism) MeanW(Y []float64) float64 {
	var s float64
	for i := range m.Species {
		s += Y[i] / m.Species[i].W
	}
	return 1 / s
}

// Density returns rho from the ideal-gas law at (P, T, Y) in kg/m^3.
func (m *Mechanism) Density(P, T float64, Y []float64) float64 {
	return P * m.MeanW(Y) / (R * T)
}

// Pressure returns P from (rho, T, Y) in Pa.
func (m *Mechanism) Pressure(rho, T float64, Y []float64) float64 {
	return rho * R * T / m.MeanW(Y)
}

// CpMass returns the mixture cp in J/(kg K).
func (m *Mechanism) CpMass(T float64, Y []float64) float64 {
	var cp float64
	for i := range m.Species {
		cp += Y[i] * m.Species[i].CpMass(T)
	}
	return cp
}

// CvMass returns the mixture cv = cp - R/W in J/(kg K).
func (m *Mechanism) CvMass(T float64, Y []float64) float64 {
	return m.CpMass(T, Y) - R/m.MeanW(Y)
}

// HMass returns the mixture specific enthalpy in J/kg (with formation
// enthalpies).
func (m *Mechanism) HMass(T float64, Y []float64) float64 {
	var h float64
	for i := range m.Species {
		h += Y[i] * m.Species[i].HMass(T)
	}
	return h
}

// UMass returns the mixture specific internal energy u = h - RT/W.
func (m *Mechanism) UMass(T float64, Y []float64) float64 {
	return m.HMass(T, Y) - R*T/m.MeanW(Y)
}

// MoleFractions converts mass to mole fractions; out may alias Y.
func (m *Mechanism) MoleFractions(Y, out []float64) {
	w := m.MeanW(Y)
	for i := range m.Species {
		out[i] = Y[i] * w / m.Species[i].W
	}
}

// MassFractions converts mole to mass fractions; out may alias X.
func (m *Mechanism) MassFractions(X, out []float64) {
	var wm float64
	for i := range m.Species {
		wm += X[i] * m.Species[i].W
	}
	for i := range m.Species {
		out[i] = X[i] * m.Species[i].W / wm
	}
}

// StoichiometricH2Air returns mass fractions of a stoichiometric
// H2–air mixture (2 H2 : 1 O2 : 3.76 N2 by mole) mapped onto the
// mechanism's species.
func (m *Mechanism) StoichiometricH2Air() []float64 {
	X := make([]float64, m.NumSpecies())
	tot := 2.0 + 1.0 + 3.76
	X[m.SpeciesIndex("H2")] = 2.0 / tot
	X[m.SpeciesIndex("O2")] = 1.0 / tot
	X[m.SpeciesIndex("N2")] = 3.76 / tot
	Y := make([]float64, m.NumSpecies())
	m.MassFractions(X, Y)
	return Y
}

// NormalizeY clamps negatives to zero and rescales Y to sum to one
// (defensive normalization after transport/integration steps).
func NormalizeY(Y []float64) {
	var s float64
	for i, v := range Y {
		if v < 0 {
			Y[i] = 0
			v = 0
		}
		s += v
	}
	if s > 0 {
		inv := 1 / s
		for i := range Y {
			Y[i] *= inv
		}
	}
}
