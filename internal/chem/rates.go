package chem

import "math"

// Rate evaluation: net molar production rates from concentrations, with
// reverse rates computed from equilibrium thermodynamics so the
// mechanism relaxes to the correct chemical equilibrium.

// RateOfProgress returns the net rate q = kf*Π[R]^nu - kr*Π[P]^nu of
// one reaction (mol/m^3/s), including the third-body factor.
func (m *Mechanism) RateOfProgress(r *Reaction, T float64, conc []float64) float64 {
	kf := r.A * math.Pow(T, r.N) * math.Exp(-r.Ea/(R*T))

	// Third-body concentration.
	cm := 1.0
	if r.ThirdBody {
		cm = 0
		for i := range conc {
			e := 1.0
			if r.Enhanced != nil {
				if v, ok := r.Enhanced[i]; ok {
					e = v
				}
			}
			cm += e * conc[i]
		}
	}

	fwd := kf
	for _, s := range r.Reactants {
		fwd *= ipow(conc[s.Index], s.Nu)
	}

	var rev float64
	if r.Reversible {
		kr := kf / m.equilibriumKc(r, T)
		rev = kr
		for _, s := range r.Products {
			rev *= ipow(conc[s.Index], s.Nu)
		}
	}
	return cm * (fwd - rev)
}

// equilibriumKc computes the concentration equilibrium constant from
// standard-state Gibbs energies: Kp = exp(-ΔG0/RT), Kc = Kp (P0/RT)^Δn.
func (m *Mechanism) equilibriumKc(r *Reaction, T float64) float64 {
	var dGRT, dn float64
	for _, s := range r.Products {
		dGRT += s.Nu * m.Species[s.Index].GRT(T)
		dn += s.Nu
	}
	for _, s := range r.Reactants {
		dGRT -= s.Nu * m.Species[s.Index].GRT(T)
		dn -= s.Nu
	}
	kp := math.Exp(-dGRT)
	return kp * math.Pow(PAtm/(R*T), dn)
}

// ipow computes c^nu for small integral nu fast, falling back to Pow.
func ipow(c, nu float64) float64 {
	switch nu {
	case 1:
		return c
	case 2:
		return c * c
	case 3:
		return c * c * c
	}
	return math.Pow(c, nu)
}

// ProductionRates fills wdot (length NumSpecies) with net molar
// production rates in mol/(m^3 s) given temperature and molar
// concentrations (mol/m^3).
func (m *Mechanism) ProductionRates(T float64, conc, wdot []float64) {
	for i := range wdot {
		wdot[i] = 0
	}
	for ri := range m.Reactions {
		r := &m.Reactions[ri]
		q := m.RateOfProgress(r, T, conc)
		for _, s := range r.Reactants {
			wdot[s.Index] -= s.Nu * q
		}
		for _, s := range r.Products {
			wdot[s.Index] += s.Nu * q
		}
	}
}

// Concentrations converts (rho, Y) to molar concentrations: c_i =
// rho Y_i / W_i. out must have NumSpecies entries.
//
// Slightly negative mass fractions (implicit-solver transients around
// zero) are passed through unclamped: every rate law here is
// polynomial in the concentrations (integer stoichiometry), so the
// smooth continuation keeps Newton iterations well behaved, whereas a
// clamp puts a derivative kink exactly where trace species oscillate.
func (m *Mechanism) Concentrations(rho float64, Y, out []float64) {
	for i := range m.Species {
		out[i] = rho * Y[i] / m.Species[i].W
	}
}
