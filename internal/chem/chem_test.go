package chem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, rel float64) bool {
	return math.Abs(a-b) <= rel*math.Max(math.Abs(a), math.Abs(b))+1e-300
}

// ---- thermo -------------------------------------------------------------

func TestCpKnownValues(t *testing.T) {
	// N2 at 298.15 K: cp ≈ 29.1 J/(mol K).
	if cp := speciesN2.CpMolar(298.15); !almost(cp, 29.1, 0.02) {
		t.Errorf("N2 cp(298) = %v", cp)
	}
	// H2O vapor at 298.15 K: cp ≈ 33.6 J/(mol K).
	if cp := speciesH2O.CpMolar(298.15); !almost(cp, 33.6, 0.02) {
		t.Errorf("H2O cp(298) = %v", cp)
	}
	// H2 at 1500 K: cp ≈ 32.3 J/(mol K).
	if cp := speciesH2.CpMolar(1500); !almost(cp, 32.3, 0.03) {
		t.Errorf("H2 cp(1500) = %v", cp)
	}
}

func TestFormationEnthalpies(t *testing.T) {
	T0 := 298.15
	// Heats of formation at 298 K, J/mol.
	cases := []struct {
		sp   *Species
		want float64
	}{
		{&speciesH, 218000},
		{&speciesO, 249200},
		{&speciesOH, 37300}, // GRI uses ~37 kJ/mol for OH
		{&speciesH2O, -241800},
		{&speciesH2O2, -135900},
		{&speciesH2, 0},
		{&speciesO2, 0},
		{&speciesN2, 0},
	}
	for _, c := range cases {
		h := c.sp.HMolar(T0)
		if math.Abs(h-c.want) > math.Max(3500, 0.03*math.Abs(c.want)) {
			t.Errorf("%s: Hf(298) = %.0f, want ~%.0f", c.sp.Name, h, c.want)
		}
	}
}

func TestNASAContinuityAtTmid(t *testing.T) {
	for _, sp := range H2Air().Species {
		eps := 1e-6
		cpLo := sp.CpR(sp.Tmid - eps)
		cpHi := sp.CpR(sp.Tmid + eps)
		if !almost(cpLo, cpHi, 1e-3) {
			t.Errorf("%s: cp discontinuous at Tmid: %v vs %v", sp.Name, cpLo, cpHi)
		}
		hLo, hHi := sp.HRT(sp.Tmid-eps), sp.HRT(sp.Tmid+eps)
		if !almost(hLo, hHi, 1e-3) {
			t.Errorf("%s: h discontinuous at Tmid: %v vs %v", sp.Name, hLo, hHi)
		}
		sLo, sHi := sp.SR(sp.Tmid-eps), sp.SR(sp.Tmid+eps)
		if !almost(sLo, sHi, 1e-3) {
			t.Errorf("%s: s discontinuous at Tmid: %v vs %v", sp.Name, sLo, sHi)
		}
	}
}

func TestThermoIdentity(t *testing.T) {
	// dh/dT = cp, checked by finite difference.
	for _, sp := range []*Species{&speciesH2, &speciesO2, &speciesH2O, &speciesOH} {
		for _, T := range []float64{400, 800, 1200, 2000} {
			dT := 1e-3
			dh := (sp.HMolar(T+dT) - sp.HMolar(T-dT)) / (2 * dT)
			if !almost(dh, sp.CpMolar(T), 1e-5) {
				t.Errorf("%s at %v K: dh/dT = %v, cp = %v", sp.Name, T, dh, sp.CpMolar(T))
			}
		}
	}
}

// ---- mechanism ----------------------------------------------------------

func TestMechanismShapes(t *testing.T) {
	full := H2Air()
	if full.NumSpecies() != 9 || full.NumReactions() != 19 {
		t.Errorf("full mech: %d species, %d reactions", full.NumSpecies(), full.NumReactions())
	}
	lite := H2AirLite()
	if lite.NumSpecies() != 8 || lite.NumReactions() != 5 {
		t.Errorf("lite mech: %d species, %d reactions", lite.NumSpecies(), lite.NumReactions())
	}
	if full.SpeciesIndex("N2") != 8 {
		t.Errorf("N2 index = %d", full.SpeciesIndex("N2"))
	}
	names := full.SpeciesNames()
	if names[0] != "H2" || names[8] != "N2" {
		t.Errorf("names = %v", names)
	}
}

func TestByName(t *testing.T) {
	if m, err := ByName("h2air"); err != nil || m.NumReactions() != 19 {
		t.Errorf("h2air: %v %v", m, err)
	}
	if m, err := ByName("h2air-lite"); err != nil || m.NumReactions() != 5 {
		t.Errorf("lite: %v %v", m, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown mechanism")
	}
}

func TestSpeciesIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	H2Air().SpeciesIndex("XYZ")
}

// ---- rates --------------------------------------------------------------

func randomState(m *Mechanism, rng *rand.Rand) (float64, []float64) {
	T := 800 + 1700*rng.Float64()
	conc := make([]float64, m.NumSpecies())
	for i := range conc {
		conc[i] = rng.Float64() * 10 // mol/m^3, flame-like magnitudes
	}
	return T, conc
}

// Mass conservation: Σ wdot_i W_i = 0 for any state.
func TestProductionRatesConserveMass(t *testing.T) {
	for _, m := range []*Mechanism{H2Air(), H2AirLite()} {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			T, conc := randomState(m, rng)
			wdot := make([]float64, m.NumSpecies())
			m.ProductionRates(T, conc, wdot)
			var sum, scale float64
			for i := range wdot {
				term := wdot[i] * m.Species[i].W
				sum += term
				scale += math.Abs(term)
			}
			return math.Abs(sum) <= 1e-10*(scale+1)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

// Element conservation: H and O atom production rates vanish.
func TestProductionRatesConserveElements(t *testing.T) {
	m := H2Air()
	nH := map[string]float64{"H2": 2, "H2O": 2, "OH": 1, "H": 1, "HO2": 1, "H2O2": 2}
	nO := map[string]float64{"O2": 2, "H2O": 1, "OH": 1, "O": 1, "HO2": 2, "H2O2": 2}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		T, conc := randomState(m, rng)
		wdot := make([]float64, m.NumSpecies())
		m.ProductionRates(T, conc, wdot)
		var sh, so, scale float64
		for i, sp := range m.Species {
			sh += wdot[i] * nH[sp.Name]
			so += wdot[i] * nO[sp.Name]
			scale += math.Abs(wdot[i])
		}
		return math.Abs(sh) <= 1e-9*(scale+1) && math.Abs(so) <= 1e-9*(scale+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Detailed balance: at equilibrium concentrations, each reversible
// reaction's net rate is zero.
func TestDetailedBalanceAtEquilibrium(t *testing.T) {
	m := H2Air()
	T := 1500.0
	// Construct concentrations satisfying Kc for H2+OH=H2O+H:
	// choose arbitrary [H2], [OH], [H2O]; solve [H].
	r := &m.Reactions[2] // H2+OH=H2O+H
	kc := m.equilibriumKc(r, T)
	cH2, cOH, cH2O := 2.0, 0.3, 5.0
	cH := kc * cH2 * cOH / cH2O
	conc := make([]float64, m.NumSpecies())
	conc[m.SpeciesIndex("H2")] = cH2
	conc[m.SpeciesIndex("OH")] = cOH
	conc[m.SpeciesIndex("H2O")] = cH2O
	conc[m.SpeciesIndex("H")] = cH
	q := m.RateOfProgress(r, T, conc)
	// Compare against the gross forward rate.
	fwdOnly := *r
	fwdOnly.Reversible = false
	qf := m.RateOfProgress(&fwdOnly, T, conc)
	if math.Abs(q) > 1e-9*math.Abs(qf) {
		t.Errorf("net rate at equilibrium = %v (fwd %v)", q, qf)
	}
}

func TestThirdBodyEnhancement(t *testing.T) {
	m := H2Air()
	r := &m.Reactions[4] // H2+M=H+H+M, H2O efficiency 12
	T := 2500.0
	conc := make([]float64, m.NumSpecies())
	conc[m.SpeciesIndex("H2")] = 1.0
	q1 := m.RateOfProgress(r, T, conc)
	// Adding H2O (eff 12) must boost the rate ~12x more than adding N2.
	concW := append([]float64(nil), conc...)
	concW[m.SpeciesIndex("H2O")] = 1.0
	concN := append([]float64(nil), conc...)
	concN[m.SpeciesIndex("N2")] = 1.0
	qW := m.RateOfProgress(r, T, concW)
	qN := m.RateOfProgress(r, T, concN)
	if !(qW > qN && qN > q1) {
		t.Errorf("third-body ordering broken: %v %v %v", q1, qN, qW)
	}
	boostW := (qW - q1)
	boostN := (qN - q1)
	if !almost(boostW/boostN, 12.0, 0.05) {
		t.Errorf("H2O/N2 enhancement ratio = %v, want 12", boostW/boostN)
	}
}

func TestChainBranchingDirection(t *testing.T) {
	// In a hot stoichiometric mixture seeded with H radicals, H2 and O2
	// must be consumed and H2O produced.
	m := H2Air()
	Y := m.StoichiometricH2Air()
	// Seed a radical pool (H alone cannot make H2O; the chain needs OH).
	Y[m.SpeciesIndex("H")] = 1e-4
	Y[m.SpeciesIndex("OH")] = 1e-4
	Y[m.SpeciesIndex("O")] = 1e-4
	NormalizeY(Y)
	T := 1600.0
	rho := m.Density(PAtm, T, Y)
	conc := make([]float64, m.NumSpecies())
	m.Concentrations(rho, Y, conc)
	wdot := make([]float64, m.NumSpecies())
	m.ProductionRates(T, conc, wdot)
	if wdot[m.SpeciesIndex("H2")] >= 0 {
		t.Errorf("H2 wdot = %v, want negative", wdot[m.SpeciesIndex("H2")])
	}
	if wdot[m.SpeciesIndex("O2")] >= 0 {
		t.Errorf("O2 wdot = %v, want negative", wdot[m.SpeciesIndex("O2")])
	}
	if wdot[m.SpeciesIndex("H2O")] <= 0 {
		t.Errorf("H2O wdot = %v, want positive", wdot[m.SpeciesIndex("H2O")])
	}
	// N2 is inert.
	if wdot[m.SpeciesIndex("N2")] != 0 {
		t.Errorf("N2 wdot = %v, want 0", wdot[m.SpeciesIndex("N2")])
	}
}

func TestArrheniusTemperatureSensitivity(t *testing.T) {
	// H+O2=O+OH has Ea ≈ 69.4 kJ/mol: rate must grow steeply with T.
	m := H2Air()
	conc := make([]float64, m.NumSpecies())
	conc[m.SpeciesIndex("H")] = 1
	conc[m.SpeciesIndex("O2")] = 1
	r := &m.Reactions[0]
	fwd := *r
	fwd.Reversible = false
	q1000 := m.RateOfProgress(&fwd, 1000, conc)
	q2000 := m.RateOfProgress(&fwd, 2000, conc)
	if q2000 < 20*q1000 {
		t.Errorf("rate ratio 2000/1000 K = %v, want >> 1", q2000/q1000)
	}
}

// ---- mixture ------------------------------------------------------------

func TestMeanWStoichH2Air(t *testing.T) {
	m := H2Air()
	Y := m.StoichiometricH2Air()
	// 2 H2 + 1 O2 + 3.76 N2: W = (2*2.016+31.998+3.76*28.014)/6.76 ≈ 20.9 g/mol
	if w := m.MeanW(Y); !almost(w, 20.9e-3, 0.01) {
		t.Errorf("meanW = %v", w)
	}
	var s float64
	for _, y := range Y {
		s += y
	}
	if !almost(s, 1, 1e-12) {
		t.Errorf("Y sums to %v", s)
	}
}

func TestDensityPressureRoundTrip(t *testing.T) {
	m := H2Air()
	Y := m.StoichiometricH2Air()
	rho := m.Density(PAtm, 1000, Y)
	if p := m.Pressure(rho, 1000, Y); !almost(p, PAtm, 1e-12) {
		t.Errorf("pressure round trip = %v", p)
	}
	// Stoich H2-air at 300 K, 1 atm: rho ≈ 0.85 kg/m^3.
	if rho300 := m.Density(PAtm, 300, Y); !almost(rho300, 0.85, 0.02) {
		t.Errorf("rho(300K) = %v", rho300)
	}
}

func TestMoleMassFractionRoundTrip(t *testing.T) {
	m := H2Air()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		Y := make([]float64, m.NumSpecies())
		var s float64
		for i := range Y {
			Y[i] = rng.Float64()
			s += Y[i]
		}
		for i := range Y {
			Y[i] /= s
		}
		X := make([]float64, m.NumSpecies())
		Y2 := make([]float64, m.NumSpecies())
		m.MoleFractions(Y, X)
		m.MassFractions(X, Y2)
		for i := range Y {
			if !almost(Y[i], Y2[i], 1e-10) {
				return false
			}
		}
		// X sums to 1.
		var sx float64
		for _, x := range X {
			sx += x
		}
		return almost(sx, 1, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCvLessThanCp(t *testing.T) {
	m := H2Air()
	Y := m.StoichiometricH2Air()
	for _, T := range []float64{300, 1000, 2500} {
		cp, cv := m.CpMass(T, Y), m.CvMass(T, Y)
		if cv >= cp {
			t.Errorf("cv %v >= cp %v at %v K", cv, cp, T)
		}
		if !almost(cp-cv, R/m.MeanW(Y), 1e-10) {
			t.Errorf("cp-cv = %v, want R/W = %v", cp-cv, R/m.MeanW(Y))
		}
	}
}

func TestNormalizeY(t *testing.T) {
	Y := []float64{0.5, -0.1, 0.7}
	NormalizeY(Y)
	if Y[1] != 0 {
		t.Error("negative not clamped")
	}
	if !almost(Y[0]+Y[1]+Y[2], 1, 1e-12) {
		t.Error("not normalized")
	}
	zero := []float64{0, 0}
	NormalizeY(zero) // must not divide by zero
	if zero[0] != 0 {
		t.Error("zero vector mangled")
	}
}

// ---- sources ------------------------------------------------------------

func TestConstPressureSourceHeats(t *testing.T) {
	// A radical-rich flame-like state releases heat: recombination and
	// H2+OH=H2O+H dominate. (A pure H seed is *endothermic* at first —
	// chain branching consumes enthalpy during induction.)
	m := H2Air()
	Y := m.StoichiometricH2Air()
	Y[m.SpeciesIndex("OH")] = 1e-2
	NormalizeY(Y)
	ws := NewSourceWorkspace(m)
	dY := make([]float64, m.NumSpecies())
	dT := m.ConstPressureSource(1600, PAtm, Y, dY, ws)
	if dT <= 0 {
		t.Errorf("dT/dt = %v, want positive (exothermic)", dT)
	}
	// Σ dY = 0 (mass conservation in fraction space).
	var s float64
	for _, v := range dY {
		s += v
	}
	if math.Abs(s) > 1e-12*1e6 {
		t.Errorf("Σ dY/dt = %v", s)
	}
}

func TestConstVolumeSourceHeats(t *testing.T) {
	m := H2Air()
	Y := m.StoichiometricH2Air()
	Y[m.SpeciesIndex("OH")] = 1e-2
	NormalizeY(Y)
	ws := NewSourceWorkspace(m)
	dY := make([]float64, m.NumSpecies())
	rho := m.Density(PAtm, 1600, Y)
	dT := m.ConstVolumeSource(1600, rho, Y, dY, ws)
	if dT <= 0 {
		t.Errorf("dT/dt = %v, want positive", dT)
	}
}

func TestDPDtPureThermal(t *testing.T) {
	// With frozen composition, dP/dt = rho R dT/dt / W.
	m := H2Air()
	Y := m.StoichiometricH2Air()
	rho := m.Density(PAtm, 1000, Y)
	dY := make([]float64, m.NumSpecies())
	got := m.DPDt(rho, 1000, 50, Y, dY)
	want := rho * R * 50 / m.MeanW(Y)
	if !almost(got, want, 1e-12) {
		t.Errorf("dPdt = %v, want %v", got, want)
	}
}

func TestDPDtMatchesFiniteDifference(t *testing.T) {
	// Along a short const-volume Euler step, P(t) change must match DPDt.
	m := H2Air()
	Y := m.StoichiometricH2Air()
	Y[m.SpeciesIndex("H")] = 1e-5
	NormalizeY(Y)
	T := 1500.0
	rho := m.Density(PAtm, T, Y)
	ws := NewSourceWorkspace(m)
	dY := make([]float64, m.NumSpecies())
	dT := m.ConstVolumeSource(T, rho, Y, dY, ws)
	dp := m.DPDt(rho, T, dT, Y, dY)

	h := 1e-9
	Y2 := make([]float64, len(Y))
	for i := range Y {
		Y2[i] = Y[i] + h*dY[i]
	}
	T2 := T + h*dT
	p1 := m.Pressure(rho, T, Y)
	p2 := m.Pressure(rho, T2, Y2)
	fd := (p2 - p1) / h
	if !almost(dp, fd, 1e-5) {
		t.Errorf("dPdt = %v, finite difference = %v", dp, fd)
	}
}
