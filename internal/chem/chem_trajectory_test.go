package chem

import (
	"math"
	"testing"

	"ccahydro/internal/cvode"
)

// Trajectory-level validation of the full mechanism through the BDF
// integrator: conservation along the whole ignition path and physical
// end states. These are the invariants the flame solver leans on.

func integrateConstVolume(t *testing.T, mech *Mechanism, T0, P0, tEnd float64) ([]float64, float64) {
	t.Helper()
	ws := NewSourceWorkspace(mech)
	n := mech.NumSpecies()
	f := func(_ float64, y, ydot []float64) {
		T := y[0]
		if T < 200 {
			T = 200
		}
		rho := mech.Density(y[1+n], T, y[1:1+n])
		ydot[0] = mech.ConstVolumeSource(T, rho, y[1:1+n], ydot[1:1+n], ws)
		ydot[1+n] = mech.DPDt(rho, T, ydot[0], y[1:1+n], ydot[1:1+n])
	}
	s := cvode.New(n+2, f, cvode.Options{RelTol: 1e-8, AbsTol: 1e-12})
	y0 := make([]float64, n+2)
	y0[0] = T0
	copy(y0[1:1+n], mech.StoichiometricH2Air())
	y0[1+n] = P0
	s.Init(0, y0)
	if err := s.Integrate(tEnd); err != nil {
		t.Fatal(err)
	}
	return append([]float64(nil), s.Y()...), s.T()
}

func TestIgnitionTrajectoryConservation(t *testing.T) {
	mech := H2Air()
	n := mech.NumSpecies()
	y, _ := integrateConstVolume(t, mech, 1000, PAtm, 1e-3)
	Y := y[1 : 1+n]

	// Mass fractions sum to 1 along the way (checked at the end state,
	// which accumulated the whole trajectory's drift).
	var sum float64
	for _, v := range Y {
		sum += v
	}
	// BDF conserves linear invariants only to integration accuracy;
	// at rtol=1e-8 over a full ignition the drift lands ~1e-8-1e-7.
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("sum Y = %v", sum)
	}

	// Element conservation: H and O atom mole totals match the initial
	// stoichiometric mixture.
	nH := map[string]float64{"H2": 2, "H2O": 2, "OH": 1, "H": 1, "HO2": 1, "H2O2": 2}
	nO := map[string]float64{"O2": 2, "H2O": 1, "OH": 1, "O": 1, "HO2": 2, "H2O2": 2}
	atoms := func(Y []float64, counts map[string]float64) float64 {
		var total float64
		for i, sp := range mech.Species {
			total += counts[sp.Name] * Y[i] / sp.W
		}
		return total
	}
	Y0 := mech.StoichiometricH2Air()
	if h0, h1 := atoms(Y0, nH), atoms(Y, nH); math.Abs(h1-h0) > 1e-6*h0 {
		t.Errorf("H atoms drifted: %v -> %v", h0, h1)
	}
	if o0, o1 := atoms(Y0, nO), atoms(Y, nO); math.Abs(o1-o0) > 1e-6*o0 {
		t.Errorf("O atoms drifted: %v -> %v", o0, o1)
	}

	// Nitrogen is inert: its mass fraction is untouched to round-off.
	iN2 := mech.SpeciesIndex("N2")
	if math.Abs(Y[iN2]-Y0[iN2]) > 1e-7 {
		t.Errorf("N2 changed: %v -> %v", Y0[iN2], Y[iN2])
	}
}

func TestIgnitionEndStatePhysical(t *testing.T) {
	mech := H2Air()
	n := mech.NumSpecies()
	y, _ := integrateConstVolume(t, mech, 1000, PAtm, 1e-3)
	T, P := y[0], y[1+n]
	Y := y[1 : 1+n]

	// Constant-volume adiabatic flame temperature of stoich H2-air:
	// ~2900 K (higher than the constant-pressure ~2400 K).
	if T < 2700 || T > 3100 {
		t.Errorf("T_ad,v = %v, want ~2900", T)
	}
	// Ideal-gas pressure rise ~2.5-2.8x.
	if P < 2.2*PAtm || P > 3.2*PAtm {
		t.Errorf("P = %v atm", P/PAtm)
	}
	// Density is conserved exactly (rigid vessel): recompute from the
	// final state and compare to the initial.
	rho0 := mech.Density(PAtm, 1000, mech.StoichiometricH2Air())
	rho1 := mech.Density(P, T, Y)
	if math.Abs(rho1-rho0) > 1e-6*rho0 {
		t.Errorf("density drift: %v -> %v", rho0, rho1)
	}
	// Burnt composition: H2 and O2 mostly consumed, H2O dominant
	// product, with a hot radical pool.
	if Y[mech.SpeciesIndex("H2O")] < 0.15 {
		t.Errorf("Y_H2O = %v", Y[mech.SpeciesIndex("H2O")])
	}
	if Y[mech.SpeciesIndex("H2")] > 0.01 {
		t.Errorf("unburnt H2 = %v", Y[mech.SpeciesIndex("H2")])
	}
	for i, v := range Y {
		if v < -1e-9 {
			t.Errorf("Y[%s] = %v (negative)", mech.Species[i].Name, v)
		}
	}
}

func TestIgnitionDelayTemperatureOrdering(t *testing.T) {
	// Hotter mixtures ignite sooner: find the 1500 K crossing time via
	// bisection on integration horizon.
	mech := H2Air()
	delay := func(T0 float64) float64 {
		lo, hi := 0.0, 2e-3
		for iter := 0; iter < 18; iter++ {
			mid := 0.5 * (lo + hi)
			y, _ := integrateConstVolume(t, mech, T0, PAtm, mid)
			if y[0] > 1500 {
				hi = mid
			} else {
				lo = mid
			}
		}
		return hi
	}
	d1000 := delay(1000)
	d1200 := delay(1200)
	if d1200 >= d1000 {
		t.Errorf("delay(1200K)=%v >= delay(1000K)=%v", d1200, d1000)
	}
	// Sanity band for 1000 K, 1 atm stoich H2-air: O(0.1 ms).
	if d1000 < 2e-5 || d1000 > 1e-3 {
		t.Errorf("delay(1000K) = %v s", d1000)
	}
}
