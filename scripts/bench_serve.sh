#!/bin/sh
# Regenerate BENCH_serve.json: the run-server study — cold throughput
# for a batch of distinct jobs over the shared scheduler, the
# resubmission pass served entirely from the content-addressed result
# store (hit latency vs cold, dedup speedup), and the flame prefix
# warm-start (live steps for an extension vs the cold full run). The
# hit/step counts are deterministic; wall-clock rates are
# host-dependent. Run from the repo root:
#
#   sh scripts/bench_serve.sh           # full batch (12 jobs)
#   sh scripts/bench_serve.sh -quick    # reduced batch (4 jobs)
set -e

cd "$(dirname "$0")/.."

go run ./cmd/experiments -exp serve -servejson BENCH_serve.json "$@"
