#!/bin/sh
# Regenerate BENCH_pool.json: the epoch-engine dispatch microbenchmark
# (persistent-worker epoch handoff vs goroutine-spawn fork/join vs the
# channel-dispatch pool it replaced) and the deterministic
# strip-interleave tail-occupancy study. Dispatch rows are wall-clock
# best-of-reps — the overhead *ratio* is the claim, not the absolute
# nanoseconds; strip rows are pure geometry. Run from the repo root:
#
#   sh scripts/bench_pool.sh           # full sweep
#   sh scripts/bench_pool.sh -quick    # reduced sweep
set -e

cd "$(dirname "$0")/.."

go run ./cmd/experiments -exp pool -pooljson BENCH_pool.json "$@"
