#!/bin/sh
# Tier-1 gate: formatting, stale-codegen check, vet, build, full test
# suite, then race-detector runs on the packages with intra-rank
# parallelism (the exec epoch engine — persistent workers claiming
# chunks off a lock-free claim word — and everything that fans patch
# loops out over it, including the RKC stages) plus the checkpoint
# subsystem — internal/core under -race includes the cross-P
# elastic-restore matrix (all {1,2,4}->{1,2,4} pairs) and the
# delta-chain crash torture tests. internal/exec also asserts the
# steady-state epoch handoff allocates nothing (TestEpochHandoffZeroAlloc).
# The race list includes internal/telemetry (lock-free flight ring,
# hub fan-out) and internal/serve (the multi-tenant run server:
# concurrent jobs over one pool, checkpoint-boundary preemption,
# elastic resume, content-addressed dedup). Two smoke passes close it
# out: the live telemetry endpoints against a real 4-rank run
# (TestTelemetryEndpointsLiveFlame) and the live run server
# (TestServeLiveSmoke boots ccaserve's scheduler+HTTP stack, submits
# two concurrent jobs plus a duplicate, and asserts the duplicate is a
# zero-step cache hit; TestAcceptancePreemptResume drives the
# preempt/elastic-resume scenario end to end). The scenario gate
# parse-validates every file in scenarios/ against the component
# schema, replays the hand-built fuzz corpus through the parser (the
# seeds run even without a fuzzing budget), and holds the golden
# equivalence claim: each built-in problem's scenario file reproduces
# the hard-coded assembly bit for bit, serially and on 4 SCMD ranks.
# Run from the repo root:
#
#   sh scripts/check.sh
set -e

cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l cmd internal)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go generate ./internal/chem/... (generated kernels must be committed fresh)"
go generate ./internal/chem/...
if ! git diff --exit-code -- internal/chem/kernels; then
	echo "stale generated kernels: commit the go generate output above" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (epoch engine + drivers + message substrate + observability + checkpoint)"
go test -race ./internal/exec/... ./internal/components/... ./internal/core/... \
	./internal/mpi/... ./internal/field/... ./internal/obs/... ./internal/cca/... \
	./internal/ckpt/... ./internal/chem/... ./internal/rkc/... ./internal/telemetry/... \
	./internal/serve/... ./internal/scenario/...

echo "== scenario gate (library parse-validates, fuzz corpus replays, golden bit-for-bit equivalence)"
go test -run 'TestScenarioLibraryCompiles|FuzzParseScenario|TestGolden' -count=1 ./internal/scenario/

echo "== telemetry endpoint smoke (live /metrics /healthz /series /trace on a 4-rank run)"
go test -run 'TestTelemetryEndpointsLiveFlame|TestTelemetryFaultFlightRecorder' -count=1 ./internal/core/

echo "== run-server live smoke (submit two jobs + a duplicate over HTTP, preempt/resume acceptance)"
go test -run 'TestServeLiveSmoke|TestAcceptancePreemptResume' -count=1 ./internal/serve/

echo "OK"
