#!/bin/sh
# Regenerate BENCH_obs.json: the observability study. Prints the
# interceptor-overhead table (Table 4 protocol with the port-call
# interceptor as the variable; wall seconds, host-dependent) and writes
# the deterministic trace-shape artifact — span counts per category,
# balanced halo flow pairs, port-call totals, virtual run time — from a
# pinned 2-rank instrumented flame. Also drops the run's Perfetto trace
# next to the artifact. Run from the repo root:
#
#   sh scripts/bench_obs.sh            # full overhead sweep
#   sh scripts/bench_obs.sh -quick     # reduced sweep (same artifact)
set -e

cd "$(dirname "$0")/.."

go run ./cmd/experiments -exp obs -obsjson BENCH_obs.json -obstrace obs_trace.json "$@"
