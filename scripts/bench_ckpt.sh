#!/bin/sh
# Regenerate the checkpoint/restart study artifact (BENCH_ckpt.json):
# shard/manifest sizes, bit-for-bit restore verdicts for the flame and
# shock drivers (serial and 4-rank), and the supervised fault-recovery
# result. All JSON fields are deterministic; wall-clock timings go to
# stdout only.
#
#   sh scripts/bench_ckpt.sh
set -e

cd "$(dirname "$0")/.."

go run ./cmd/experiments -exp ckpt -ckptjson BENCH_ckpt.json
