#!/bin/sh
# Regenerate BENCH_chem.json: the generated-kernel chemistry study.
# Microbenchmarks each mechanism (interpreted vs chemgen RHS ns/op,
# finite-difference vs analytic Jacobian build cost) and runs the 2D
# flame end-to-end on both engines. The solver work counters (RHS and
# Jacobian evaluations per flame step) are deterministic for the pinned
# assembly; wall seconds are host-dependent and back the speedup
# headline, which must exceed the 1.5x acceptance bar. Run from the
# repo root:
#
#   sh scripts/bench_chem.sh           # full study
#   sh scripts/bench_chem.sh -quick    # reduced iterations (same artifact)
set -e

cd "$(dirname "$0")/.."

go run ./cmd/experiments -exp chem -chemjson BENCH_chem.json "$@"
