#!/bin/sh
# Regenerate BENCH_comm.json: the halo-exchange study comparing the
# blocking baseline against the asynchronous coalesced exchange
# (virtual times, message counts before/after coalescing, hidden flight
# time). Deterministic — virtual clocks and pinned per-cell rates, no
# wall-clock calibration. Run from the repo root:
#
#   sh scripts/bench_comm.sh           # full sweep (P up to 48)
#   sh scripts/bench_comm.sh -quick    # reduced sweep
set -e

cd "$(dirname "$0")/.."

go run ./cmd/experiments -exp comm -commjson BENCH_comm.json "$@"
