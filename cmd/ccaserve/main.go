// Command ccaserve is the long-lived simulation-as-a-service daemon:
// it multiplexes many concurrent paper assemblies (ignition, flame,
// shock) over one shared worker pool behind an HTTP/JSON API with
// priority scheduling, checkpoint-boundary preemption, elastic resume,
// and content-addressed run dedup.
//
//	ccaserve -addr 127.0.0.1:8080 -slots 8 -dir ccaserve-data
//
//	curl -X POST localhost:8080/jobs -d '{"problem":"flame","priority":"high","ranks":2}'
//	curl localhost:8080/jobs/job-0001
//	curl -N localhost:8080/jobs/job-0001/series
//	curl -X POST localhost:8080/jobs/job-0001/cancel
//
// Declarative scenarios (see internal/scenario and scenarios/) submit
// as {"scenario": "<file text>"}; a scenario with a sweep block goes to
// /arrays and expands into one job per sweep point:
//
//	jq -Rs '{scenario:.}' scenarios/richtmyer_meshkov.scn | curl -X POST localhost:8080/arrays -d @-
//	curl localhost:8080/arrays/array-0001
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ccahydro/internal/mpi"
	"ccahydro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	slots := flag.Int("slots", 4, "rank-slot capacity shared by all running jobs")
	dir := flag.String("dir", "ccaserve-data", "state root (checkpoints and the content-addressed result store); empty for ephemeral")
	network := flag.String("network", "cplant", "virtual network model: cplant, fastethernet, zero")
	maxRetries := flag.Int("max-retries", 2, "rank-failure relaunch budget per job admission")
	storeMax := flag.Int("store-max", 0, "result-store entry cap, LRU-evicted past it (0 = unbounded; checkpoint lineages are never evicted)")
	grace := flag.Duration("grace", 30*time.Second, "graceful shutdown budget on SIGINT/SIGTERM")
	flag.Parse()

	model := mpi.CPlantModel
	switch *network {
	case "fastethernet":
		model = mpi.FastEthernetModel
	case "zero":
		model = mpi.ZeroModel
	}

	sched, err := serve.NewScheduler(serve.Options{
		Slots:      *slots,
		Dir:        *dir,
		Model:      model,
		MaxRetries: *maxRetries,
		StoreMax:   *storeMax,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv, err := serve.Listen(*addr, sched)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("ccaserve listening on http://%s (%d slots)\n", srv.Addr(), *slots)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("ccaserve: draining (running jobs stop at their next checkpoint)")
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
		fmt.Fprintln(os.Stderr, "ccaserve:", err)
		os.Exit(1)
	}
}
