// Command ccarun is the Ccaffeine-style launcher: it executes a CCA
// assembly script on P identically configured framework instances
// (SCMD), the equivalent of "mpirun -np P ccaffeine --file script.rc".
//
//	ccarun -np 4 script.rc
//	ccarun -list                  # show the component palette
//	ccarun -arena script.rc      # print the assembly without running "go"
//	ccarun -np 4 -trace out.json script.rc   # Perfetto trace of the run
//	ccarun -obs script.rc                    # port-call summary table
//	ccarun -metrics :8080 script.rc          # /metrics, /debug/vars, /debug/pprof
//
// Script grammar (one command per line, # comments):
//
//	repository get-global <ClassName>
//	instantiate <ClassName> <instance>
//	parameter <instance> <key> <value...>
//	connect <user> <usesPort> <provider> <providesPort>
//	disconnect <user> <usesPort>
//	go <instance> <portName>
//	quit
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	_ "expvar"         // /debug/vars on the metrics server
	_ "net/http/pprof" // /debug/pprof on the metrics server

	"ccahydro/internal/cca"
	"ccahydro/internal/components"
	"ccahydro/internal/mpi"
	"ccahydro/internal/obs"
)

func main() {
	np := flag.Int("np", 1, "number of SCMD framework instances (ranks)")
	list := flag.Bool("list", false, "list the component palette and exit")
	arena := flag.Bool("arena", false, "execute everything except 'go' commands and print the assembly")
	network := flag.String("network", "cplant", "virtual network model: cplant, fastethernet, zero")
	tracePath := flag.String("trace", "", "write a merged Chrome/Perfetto trace of the run to this file")
	obsTable := flag.Bool("obs", false, "print the port-call summary table after the run")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address while the run executes")
	flag.Parse()

	repo := components.NewRepository()
	if *list {
		fmt.Println("component palette:")
		for _, c := range repo.Classes() {
			fmt.Println(" ", c)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ccarun [-np P] script.rc")
		os.Exit(2)
	}
	text, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	script, err := cca.ParseScriptString(string(text))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *arena {
		// Drop "go" commands, build serially, print the wiring.
		var filtered cca.Script
		for _, c := range script.Commands {
			if c.Verb != "go" {
				filtered.Commands = append(filtered.Commands, c)
			}
		}
		f := cca.NewFramework(repo, nil)
		if err := filtered.Execute(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(cca.Arena(f))
		return
	}

	model := mpi.CPlantModel
	switch *network {
	case "fastethernet":
		model = mpi.FastEthernetModel
	case "zero":
		model = mpi.ZeroModel
	}

	// One observability session per rank when any consumer asks for it;
	// with no consumer the interceptor stays off and every hot path runs
	// exactly as without this build.
	var group *obs.Group
	if *tracePath != "" || *obsTable || *metricsAddr != "" {
		group = obs.NewGroup(*np)
	}

	if *metricsAddr != "" {
		// expvar and pprof self-register on the default mux; /metrics
		// serves the live merged registry in Prometheus text format.
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			group.MergedSnapshot().WritePrometheus(w)
		})
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("metrics on http://%s/metrics (also /debug/vars, /debug/pprof)\n", ln.Addr())
		go http.Serve(ln, nil) //nolint:errcheck // dies with the process
	}

	if *np == 1 {
		f := cca.NewFramework(repo, nil)
		if group != nil {
			f.SetObservability(group.Rank(0))
		}
		if err := script.Execute(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		res := cca.RunSCMD(*np, model, repo, func(f *cca.Framework, comm *mpi.Comm) error {
			if group != nil {
				f.SetObservability(group.Rank(comm.Rank()))
			}
			return script.Execute(f)
		})
		if err := res.Err(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("SCMD job complete: %d ranks, simulated run time %.3f s\n", *np, res.MaxVirtualTime())
	}

	if group != nil {
		if err := writeObsOutputs(group, *tracePath, *obsTable); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// writeObsOutputs emits the post-run artifacts: the merged Perfetto
// trace file and/or the port-call summary table.
func writeObsOutputs(group *obs.Group, tracePath string, table bool) error {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := group.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (open with https://ui.perfetto.dev or chrome://tracing)\n", tracePath)
	}
	if table {
		fmt.Println("\nport-call summary (all ranks merged):")
		group.MergedSnapshot().WriteCallTable(os.Stdout)
	}
	return nil
}
