// Command ccarun is the Ccaffeine-style launcher: it executes a CCA
// assembly script on P identically configured framework instances
// (SCMD), the equivalent of "mpirun -np P ccaffeine --file script.rc".
//
//	ccarun -np 4 script.rc
//	ccarun -list                  # show the component palette
//	ccarun -arena script.rc      # print the assembly without running "go"
//
// Script grammar (one command per line, # comments):
//
//	repository get-global <ClassName>
//	instantiate <ClassName> <instance>
//	parameter <instance> <key> <value...>
//	connect <user> <usesPort> <provider> <providesPort>
//	disconnect <user> <usesPort>
//	go <instance> <portName>
//	quit
package main

import (
	"flag"
	"fmt"
	"os"

	"ccahydro/internal/cca"
	"ccahydro/internal/components"
	"ccahydro/internal/mpi"
)

func main() {
	np := flag.Int("np", 1, "number of SCMD framework instances (ranks)")
	list := flag.Bool("list", false, "list the component palette and exit")
	arena := flag.Bool("arena", false, "execute everything except 'go' commands and print the assembly")
	network := flag.String("network", "cplant", "virtual network model: cplant, fastethernet, zero")
	flag.Parse()

	repo := components.NewRepository()
	if *list {
		fmt.Println("component palette:")
		for _, c := range repo.Classes() {
			fmt.Println(" ", c)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ccarun [-np P] script.rc")
		os.Exit(2)
	}
	text, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	script, err := cca.ParseScriptString(string(text))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *arena {
		// Drop "go" commands, build serially, print the wiring.
		var filtered cca.Script
		for _, c := range script.Commands {
			if c.Verb != "go" {
				filtered.Commands = append(filtered.Commands, c)
			}
		}
		f := cca.NewFramework(repo, nil)
		if err := filtered.Execute(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(cca.Arena(f))
		return
	}

	model := mpi.CPlantModel
	switch *network {
	case "fastethernet":
		model = mpi.FastEthernetModel
	case "zero":
		model = mpi.ZeroModel
	}

	if *np == 1 {
		f := cca.NewFramework(repo, nil)
		if err := script.Execute(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	res := cca.RunSCMD(*np, model, repo, func(f *cca.Framework, _ *mpi.Comm) error {
		return script.Execute(f)
	})
	if err := res.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("SCMD job complete: %d ranks, simulated run time %.3f s\n", *np, res.MaxVirtualTime())
}
