// Command ccarun is the Ccaffeine-style launcher: it executes a CCA
// assembly script on P identically configured framework instances
// (SCMD), the equivalent of "mpirun -np P ccaffeine --file script.rc".
//
//	ccarun -np 4 script.rc
//	ccarun -list                  # show the component palette
//	ccarun -arena script.rc      # print the assembly without running "go"
//	ccarun -scenario scenarios/flame2d.scn   # run a declarative scenario file
//	ccarun -np 4 -trace out.json script.rc   # Perfetto trace of the run
//	ccarun -obs script.rc                    # port-call summary table
//	ccarun -metrics :8080 script.rc          # /metrics, /debug/vars, /debug/pprof
//	ccarun -np 4 -ckpt-every 5 -ckpt-dir ck script.rc   # checkpoint every 5 steps
//	ccarun -np 4 -restore ck script.rc                  # resume from the latest checkpoint
//	ccarun -np 4 -ckpt-every 2 -fault kill:1@3 script.rc # kill rank 1 at step 3; auto-recover
//	ccarun -np 4 -serve :8080 script.rc      # live /metrics /healthz /series /trace
//	ccarun -np 4 -events run.jsonl script.rc # structured JSONL event log
//
// Script grammar (one command per line, # comments):
//
//	repository get-global <ClassName>
//	instantiate <ClassName> <instance>
//	parameter <instance> <key> <value...>
//	connect <user> <usesPort> <provider> <providesPort>
//	disconnect <user> <usesPort>
//	go <instance> <portName>
//	quit
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	_ "expvar"         // /debug/vars on the metrics server
	_ "net/http/pprof" // /debug/pprof on the metrics server

	"ccahydro/internal/cca"
	"ccahydro/internal/ckpt"
	"ccahydro/internal/components"
	"ccahydro/internal/core"
	"ccahydro/internal/mpi"
	"ccahydro/internal/obs"
	"ccahydro/internal/prof"
	"ccahydro/internal/scenario"
	"ccahydro/internal/telemetry"
)

func main() {
	np := flag.Int("np", 1, "number of SCMD framework instances (ranks)")
	list := flag.Bool("list", false, "list the component palette and exit")
	arena := flag.Bool("arena", false, "execute everything except 'go' commands and print the assembly")
	scenarioMode := flag.Bool("scenario", false, "treat the input file as a declarative scenario (validated, then lowered to the same assembly path)")
	network := flag.String("network", "cplant", "virtual network model: cplant, fastethernet, zero")
	tracePath := flag.String("trace", "", "write a merged Chrome/Perfetto trace of the run to this file")
	obsTable := flag.Bool("obs", false, "print the port-call summary table after the run")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address while the run executes")
	ckptEvery := flag.Int("ckpt-every", 0, "checkpoint cadence in driver steps (0 = off)")
	ckptDir := flag.String("ckpt-dir", "checkpoints", "checkpoint directory")
	restorePath := flag.String("restore", "", "manifest path or checkpoint directory to resume from")
	ckptIncremental := flag.Bool("ckpt-incremental", false, "write delta shards holding only patches that changed since the last checkpoint")
	ckptFullEvery := flag.Int("ckpt-full-every", 8, "with -ckpt-incremental: force a full checkpoint after this many deltas")
	ckptCompress := flag.Bool("ckpt-compress", false, "gzip checkpoint shard payloads")
	ckptKeep := flag.Int("ckpt-keep", 0, "retention: keep only the newest K checkpoints (0 = keep all)")
	ckptKeepEvery := flag.Int("ckpt-keep-every", 0, "retention: additionally keep every N-th step")
	serveAddr := flag.String("serve", "", "serve live telemetry (/metrics, /healthz, /series, /trace) on this address while the run executes")
	eventsPath := flag.String("events", "", "append structured run events (steps, regrids, checkpoints, faults, retries) to this JSONL file")
	flightDir := flag.String("flightdir", "flightrec", "directory for crash flight-recorder dumps (written on panic, rank failure, and supervisor retries)")
	faultSpec := flag.String("fault", "", "inject a rank fault (np>1): kill:RANK@STEP or stall:RANK@STEP:SECONDS")
	maxRetries := flag.Int("max-retries", 2, "relaunch budget when a rank failure hits a checkpointed run")
	obsSample := flag.Int("obssample", 0, "record 1 of every N port calls (0 or 1 = record all)")
	obsFloor := flag.Duration("obsfloor", 0, "drop port-call observations faster than this latency floor")
	traceBuf := flag.Int("tracebuf", 0, "with -trace: spill trace events to disk past N buffered per track (bounded memory)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	repo := components.NewRepository()
	if *list {
		fmt.Println("component palette:")
		for _, c := range repo.Classes() {
			fmt.Println(" ", c)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ccarun [-np P] script.rc  (or: ccarun -scenario file.scn)")
		os.Exit(2)
	}
	text, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var script *cca.Script
	if *scenarioMode {
		// Compile + validate first: every wiring or parameter mistake is
		// reported with file:line:col positions before anything runs.
		c, err := scenario.Compile(flag.Arg(0), text)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if c.HasSweep() {
			fmt.Printf("scenario %s declares a sweep (%d points); running the base point only — POST the file to ccaserve /arrays for the full job array\n",
				c.Name, c.SweepPoints())
		}
		script = c.Script()
	} else {
		script, err = cca.ParseScriptString(string(text))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *arena {
		// Drop "go" commands, build serially, print the wiring.
		var filtered cca.Script
		for _, c := range script.Commands {
			if c.Verb != "go" {
				filtered.Commands = append(filtered.Commands, c)
			}
		}
		f := cca.NewFramework(repo, nil)
		if err := filtered.Execute(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(cca.Arena(f))
		return
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	model := mpi.CPlantModel
	switch *network {
	case "fastethernet":
		model = mpi.FastEthernetModel
	case "zero":
		model = mpi.ZeroModel
	}

	// One observability session per rank when any consumer asks for it;
	// with no consumer the interceptor stays off and every hot path runs
	// exactly as without this build. -serve joins the consumers: its
	// /metrics and /trace endpoints read the live group.
	var group *obs.Group
	if *tracePath != "" || *obsTable || *metricsAddr != "" || *serveAddr != "" {
		group = obs.NewGroup(*np)
		if *obsSample > 1 || *obsFloor > 0 {
			for r := 0; r < group.Size(); r++ {
				group.Rank(r).SetPortCallSampling(*obsSample, *obsFloor)
			}
		}
		if *traceBuf > 0 && *tracePath != "" {
			// Bounded-memory tracing: events past the per-track cap stream
			// to a spill directory and are merged back at WriteTrace time.
			if err := group.StreamTo(*tracePath+".spill", *traceBuf); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	if *metricsAddr != "" {
		// expvar and pprof self-register on the default mux; /metrics
		// serves the live merged registry in Prometheus text format.
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			group.MergedSnapshot().WritePrometheus(w)
		})
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("metrics on http://%s/metrics (also /debug/vars, /debug/pprof)\n", ln.Addr())
		go http.Serve(ln, nil) //nolint:errcheck // dies with the process
	}

	var fault *mpi.Fault
	if *faultSpec != "" {
		f, err := parseFault(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fault = f
	}

	// The telemetry hub exists when anything consumes it: the live HTTP
	// plane, the JSONL event log, or fault supervision (whose retries
	// dump the flight recorder). A nil hub hands out nil rank handles,
	// and every instrumented site treats those as no-ops.
	var hub *telemetry.Hub
	if *serveAddr != "" || *eventsPath != "" || fault != nil {
		hub = telemetry.NewHub(*np, group)
		hub.SetFlightDir(*flightDir)
		if *eventsPath != "" {
			if err := hub.LogTo(*eventsPath); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	var telSrv *telemetry.Server
	if *serveAddr != "" {
		s, err := telemetry.Serve(*serveAddr, hub)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		telSrv = s
		fmt.Printf("telemetry on http://%s (/metrics, /healthz, /series, /trace)\n", telSrv.Addr())
	}

	// With checkpointing requested, the script runs in two phases: the
	// wiring commands, then WireCheckpoint retrofits a CheckpointComponent
	// onto the finished assembly, then the "go" commands fire.
	ckptActive := *ckptEvery > 0 || *restorePath != ""
	var setup, goPhase cca.Script
	for _, c := range script.Commands {
		if c.Verb == "go" {
			goPhase.Commands = append(goPhase.Commands, c)
		} else {
			setup.Commands = append(setup.Commands, c)
		}
	}

	runOnce := func(restore string, injectFault bool) error {
		assemble := func(f *cca.Framework, comm *mpi.Comm) (err error) {
			// Crash flight recorder: a genuine panic (not the substrate's
			// own world-abort unwind, which the rank runner contains)
			// dumps the rings before the process dies.
			defer func() {
				if rec := recover(); rec != nil {
					if hub != nil && !mpi.IsAbortPanic(rec) {
						hub.DumpAll("panic", fmt.Errorf("panic: %v", rec))
					}
					panic(rec)
				}
			}()
			r := 0
			if comm != nil {
				r = comm.Rank()
			}
			if group != nil {
				f.SetObservability(group.Rank(r))
			}
			if !ckptActive && hub == nil {
				return script.Execute(f)
			}
			if err := setup.Execute(f); err != nil {
				return err
			}
			if ckptActive {
				if err := core.WireCheckpointOpts(f, core.CheckpointOptions{
					Every:       *ckptEvery,
					Dir:         *ckptDir,
					Restore:     restore,
					Incremental: *ckptIncremental,
					FullEvery:   *ckptFullEvery,
					Compress:    *ckptCompress,
					Keep:        *ckptKeep,
					KeepEvery:   *ckptKeepEvery,
				}); err != nil {
					return err
				}
			}
			if hub != nil {
				rk := hub.Rank(r)
				core.AttachTelemetry(f, rk, comm)
				if group != nil {
					// Tee tracer spans into the flight ring so dumps show
					// the spans leading up to a failure.
					group.Rank(r).Tracer().SetSink(rk)
				}
			}
			return goPhase.Execute(f)
		}
		if *np == 1 {
			return assemble(cca.NewFramework(repo, nil), nil)
		}
		w := mpi.NewWorld(*np, model)
		if injectFault && fault != nil {
			w.InjectFault(*fault)
		}
		res := cca.RunSCMDOn(w, repo, assemble)
		if err := res.Err(); err != nil {
			return err
		}
		fmt.Printf("SCMD job complete: %d ranks, simulated run time %.3f s\n", *np, res.MaxVirtualTime())
		return nil
	}

	hub.SetPhase("running")
	var runErr error
	if ckptActive {
		// Supervised execution: a rank failure rolls the job back to the
		// last durable checkpoint and relaunches (fault fires once). The
		// hub is the retry notifier: each rank failure dumps the flight
		// recorder before the rollback.
		attempt := 0
		runErr = ckpt.SuperviseNotify(*ckptDir, *maxRetries, hub, func(restore string) error {
			attempt++
			hub.StartAttempt(attempt)
			if attempt == 1 {
				restore = *restorePath
			} else {
				from := restore
				if from == "" {
					from = "cold start"
				}
				fmt.Printf("rank failure detected; relaunching from %s (attempt %d)\n", from, attempt)
			}
			return runOnce(restore, attempt == 1)
		})
	} else {
		runErr = runOnce("", true)
		if runErr != nil && errors.Is(runErr, mpi.ErrRankFailed) {
			// Unsupervised rank death still leaves a post-mortem.
			hub.DumpAll("rank-failed", runErr)
		}
	}
	if runErr != nil {
		hub.SetPhase("failed")
	} else {
		hub.SetPhase("done")
	}
	if err := hub.CloseLog(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	// Finalize profiles before any error exit: a failed run's profile
	// is exactly the one worth inspecting.
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
		os.Exit(1)
	}

	if group != nil {
		if err := writeObsOutputs(group, *tracePath, *obsTable); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *obsSample > 1 || *obsFloor > 0 {
			var dropped uint64
			for r := 0; r < group.Size(); r++ {
				dropped += group.Rank(r).PortCallDropped()
			}
			fmt.Printf("port-call sampling dropped %d observations\n", dropped)
		}
	}
}

// parseFault parses -fault specs: "kill:RANK@STEP" or
// "stall:RANK@STEP:SECONDS" (0-based rank and driver step).
func parseFault(s string) (*mpi.Fault, error) {
	kind, rest, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("ccarun: bad -fault %q (want kill:RANK@STEP or stall:RANK@STEP:SECONDS)", s)
	}
	f := &mpi.Fault{AtStep: -1}
	switch kind {
	case "kill":
		f.Kind = mpi.FaultKill
	case "stall":
		f.Kind = mpi.FaultStall
	default:
		return nil, fmt.Errorf("ccarun: bad -fault kind %q (want kill or stall)", kind)
	}
	rankStr, trig, ok := strings.Cut(rest, "@")
	if !ok {
		return nil, fmt.Errorf("ccarun: bad -fault %q: missing @STEP", s)
	}
	rank, err := strconv.Atoi(rankStr)
	if err != nil {
		return nil, fmt.Errorf("ccarun: bad -fault rank %q: %w", rankStr, err)
	}
	f.Rank = rank
	stepStr := trig
	if f.Kind == mpi.FaultStall {
		var secStr string
		stepStr, secStr, ok = strings.Cut(trig, ":")
		if !ok {
			return nil, fmt.Errorf("ccarun: bad -fault %q: stall needs :SECONDS", s)
		}
		if f.StallSeconds, err = strconv.ParseFloat(secStr, 64); err != nil {
			return nil, fmt.Errorf("ccarun: bad -fault stall seconds %q: %w", secStr, err)
		}
	}
	if f.AtStep, err = strconv.Atoi(stepStr); err != nil {
		return nil, fmt.Errorf("ccarun: bad -fault step %q: %w", stepStr, err)
	}
	return f, nil
}

// writeObsOutputs emits the post-run artifacts: the merged Perfetto
// trace file and/or the port-call summary table.
func writeObsOutputs(group *obs.Group, tracePath string, table bool) error {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := group.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (open with https://ui.perfetto.dev or chrome://tracing)\n", tracePath)
	}
	if table {
		fmt.Println("\nport-call summary (all ranks merged):")
		group.MergedSnapshot().WriteCallTable(os.Stdout)
	}
	return nil
}
