// Command experiments regenerates every table and figure of the
// paper's evaluation section:
//
//	experiments -exp table4         # serial component-overhead study
//	experiments -exp table5         # weak-scaling statistics
//	experiments -exp fig3           # flame temperature evolution
//	experiments -exp fig4           # AMR patch census
//	experiments -exp fig6           # shock-interface density field
//	experiments -exp fig7           # circulation convergence (1/2/3 levels)
//	experiments -exp fig8           # weak-scaling series
//	experiments -exp fig9           # strong-scaling vs ideal
//	experiments -exp comm           # halo-exchange study (blocking vs async)
//	experiments -exp obs            # observability: interceptor overhead + trace shape
//	experiments -exp ckpt           # checkpoint/restart + fault-recovery study
//	experiments -exp chem           # generated-kernel vs interpreted chemistry study
//	experiments -exp pool           # epoch-engine dispatch + strip-interleave study
//	experiments -exp serve          # run-server throughput + content-addressed dedup study
//	experiments -exp all            # everything
//
// -quick shrinks the parameter sweeps for a fast sanity pass. -commjson
// writes the comm study to a JSON file (the BENCH_comm.json artifact);
// -obsjson does the same for the observability study (BENCH_obs.json),
// -ckptjson for the checkpoint study (BENCH_ckpt.json), -chemjson for
// the chemistry-kernel study (BENCH_chem.json), -pooljson for the pool
// study (BENCH_pool.json), and -obstrace writes the instrumented run's
// Perfetto trace. -cpuprofile/-memprofile write pprof profiles of
// whatever experiments ran.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ccahydro/internal/bench"
	"ccahydro/internal/components"
	"ccahydro/internal/euler"
	"ccahydro/internal/field"
	"ccahydro/internal/prof"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: table4, table5, fig3, fig4, fig6, fig7, fig8, fig9, netsweep, comm, obs, ckpt, chem, pool, serve, all")
	quick := flag.Bool("quick", false, "reduced sweeps for a fast pass")
	dump := flag.String("dump", "", "directory for CSV/PGM field dumps (fig3, fig4, fig6)")
	commJSON := flag.String("commjson", "", "path for the comm study JSON artifact (exp comm)")
	obsJSON := flag.String("obsjson", "", "path for the observability JSON artifact (exp obs)")
	obsTrace := flag.String("obstrace", "", "path for the instrumented run's Perfetto trace (exp obs)")
	ckptJSON := flag.String("ckptjson", "", "path for the checkpoint study JSON artifact (exp ckpt)")
	chemJSON := flag.String("chemjson", "", "path for the chemistry-kernel study JSON artifact (exp chem)")
	poolJSON := flag.String("pooljson", "", "path for the pool dispatch study JSON artifact (exp pool)")
	serveJSON := flag.String("servejson", "", "path for the run-server study JSON artifact (exp serve)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()
	if *dump != "" {
		if err := os.MkdirAll(*dump, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			// Finalize profiles before the error exit: a failed
			// experiment's profile is exactly the one worth inspecting.
			if err := stopProf(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			os.Exit(1)
		}
		fmt.Println()
	}

	var costs bench.CellCosts
	needCosts := func() error {
		if costs != (bench.CellCosts{}) {
			return nil
		}
		var err error
		costs, err = bench.Calibrate()
		if err != nil {
			return err
		}
		fmt.Printf("calibrated cell costs: cold-chem %.2e s, hot-chem %.2e s, diff-stage %.2e s, Dmax %.2e m^2/s\n\n",
			costs.ColdChem, costs.HotChem, costs.DiffStage, costs.DMax)
		return nil
	}

	ps := []int{1, 2, 4, 8, 12, 16, 24, 32, 48}
	sizes := []int{50, 100, 175}
	strongs := []int{200, 350}
	if *quick {
		ps = []int{1, 2, 4, 8}
		sizes = []int{50, 100}
		strongs = []int{100}
	}

	run("table4", func() error {
		cfg := bench.DefaultTable4Config
		if *quick {
			cfg.Cells = []int{200, 1000}
		}
		rows, err := bench.RunTable4(cfg)
		if err != nil {
			return err
		}
		bench.PrintTable4(os.Stdout, rows)
		return nil
	})

	run("table5", func() error {
		if err := needCosts(); err != nil {
			return err
		}
		rows := bench.RunTable5(costs, sizes, ps)
		bench.PrintTable5(os.Stdout, rows, ps)
		return nil
	})

	run("fig8", func() error {
		if err := needCosts(); err != nil {
			return err
		}
		rows := bench.RunTable5(costs, sizes, ps)
		bench.PrintFig8(os.Stdout, rows, ps)
		return nil
	})

	run("fig9", func() error {
		if err := needCosts(); err != nil {
			return err
		}
		series := map[int][]bench.Fig9Point{}
		for _, n := range strongs {
			series[n] = bench.RunFig9(costs, n, ps)
		}
		bench.PrintFig9(os.Stdout, series)
		return nil
	})

	run("fig3", func() error {
		cfg := bench.DefaultFig3Config
		if *quick {
			cfg = bench.Fig3Config{Nx: 24, MaxLevels: 2, StepsPerFrame: 2, Frames: 2, Dt: 1e-7}
		}
		frames, f, err := bench.RunFig3(cfg)
		if err != nil {
			return err
		}
		bench.PrintFig3(os.Stdout, frames)
		if *dump != "" {
			comp, _ := f.Lookup("grace")
			gc := comp.(*components.GrACEComponent)
			if err := dumpField(gc.Field("phi"), 0, filepath.Join(*dump, "fig3_T")); err != nil {
				return err
			}
			fmt.Printf("wrote %s/fig3_T.{csv,pgm}\n", *dump)
		}
		return nil
	})

	run("fig4", func() error {
		cfg := bench.DefaultFig3Config
		if *quick {
			cfg = bench.Fig3Config{Nx: 24, MaxLevels: 2, StepsPerFrame: 2, Frames: 1, Dt: 1e-7}
		}
		rows, err := bench.RunFig4(cfg)
		if err != nil {
			return err
		}
		bench.PrintFig4(os.Stdout, rows)
		return nil
	})

	run("fig6", func() error {
		cfg := bench.DefaultFig6Config
		if *quick {
			cfg = bench.Fig6Config{Nx: 48, Ny: 24, MaxLevels: 2, TEnd: 0.4, Flux: "GodunovFlux", Mach: 1.5}
		}
		res, f, err := bench.RunFig6(cfg)
		if err != nil {
			return err
		}
		bench.PrintFig6(os.Stdout, res)
		if *dump != "" {
			comp, _ := f.Lookup("grace")
			gc := comp.(*components.GrACEComponent)
			if err := dumpField(gc.Field("U"), euler.IRho, filepath.Join(*dump, "fig6_rho")); err != nil {
				return err
			}
			fmt.Printf("wrote %s/fig6_rho.{csv,pgm}\n", *dump)
			fmt.Println("patch map (digit = finest level):")
			fmt.Print(field.PatchMap(gc.Hierarchy(), 96))
		}
		return nil
	})

	run("comm", func() error {
		// Pinned reference costs keep the artifact deterministic across
		// hosts (no wall-clock calibration enters the virtual times).
		haloPs := []int{2, 4, 8, 16, 48}
		commPs := ps
		n := 200
		if *quick {
			haloPs = []int{2, 4}
			n = 100
		}
		rep := bench.BuildCommReport(bench.ReferenceCosts, n, haloPs, n, commPs)
		bench.PrintCommReport(os.Stdout, rep)
		if *commJSON != "" {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*commJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *commJSON)
		}
		return nil
	})

	run("obs", func() error {
		cells := []int{1000, 5000}
		if *quick {
			cells = []int{200}
		}
		rows, err := bench.RunObsOverhead(cells, bench.DefaultTable4Config.BaseTEnd)
		if err != nil {
			return err
		}
		bench.PrintObsOverhead(os.Stdout, rows)
		fmt.Println()
		rep, group, err := bench.RunObsTrace()
		if err != nil {
			return err
		}
		bench.PrintObsTrace(os.Stdout, rep)
		fmt.Println()
		tel, err := bench.RunTelemetryStudy()
		if err != nil {
			return err
		}
		rep.Telemetry = tel
		bench.PrintTelemetryStudy(os.Stdout, tel)
		if *obsJSON != "" {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*obsJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *obsJSON)
		}
		if *obsTrace != "" {
			f, err := os.Create(*obsTrace)
			if err != nil {
				return err
			}
			if err := group.WriteTrace(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s (open with https://ui.perfetto.dev)\n", *obsTrace)
		}
		return nil
	})

	run("ckpt", func() error {
		scratch, err := os.MkdirTemp("", "ckpt-study-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(scratch)
		rep, err := bench.BuildCkptReport(os.Stdout, scratch)
		if err != nil {
			return err
		}
		fmt.Println()
		bench.PrintCkptReport(os.Stdout, rep)
		if *ckptJSON != "" {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*ckptJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *ckptJSON)
		}
		return nil
	})

	run("pool", func() error {
		rep := bench.BuildPoolReport(*quick)
		bench.PrintPoolReport(os.Stdout, rep)
		if *poolJSON != "" {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*poolJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *poolJSON)
		}
		return nil
	})

	run("serve", func() error {
		rep, err := bench.BuildServeReport(*quick)
		if err != nil {
			return err
		}
		bench.PrintServeReport(os.Stdout, rep)
		if *serveJSON != "" {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*serveJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *serveJSON)
		}
		return nil
	})

	run("chem", func() error {
		rep, err := bench.BuildChemReport(*quick)
		if err != nil {
			return err
		}
		bench.PrintChemReport(os.Stdout, rep)
		if *chemJSON != "" {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*chemJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *chemJSON)
		}
		return nil
	})

	run("netsweep", func() error {
		if err := needCosts(); err != nil {
			return err
		}
		n := 200
		if *quick {
			n = 100
		}
		sweeps := bench.RunNetSweep(costs, n, ps)
		bench.PrintNetSweep(os.Stdout, n, sweeps)
		return nil
	})

	run("fig7", func() error {
		cfg := bench.DefaultFig7Config
		if *quick {
			cfg = bench.Fig7Config{Nx: 48, Ny: 24, TEnd: 0.8, MaxLevels: []int{1, 2}}
		}
		series, err := bench.RunFig7(cfg)
		if err != nil {
			return err
		}
		bench.PrintFig7(os.Stdout, series, 12)
		return nil
	})

	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// dumpField writes one component of a DataObject as both CSV and PGM.
func dumpField(d *field.DataObject, comp int, base string) error {
	csvF, err := os.Create(base + ".csv")
	if err != nil {
		return err
	}
	defer csvF.Close()
	if err := d.WriteCSV(csvF, comp, base); err != nil {
		return err
	}
	pgmF, err := os.Create(base + ".pgm")
	if err != nil {
		return err
	}
	defer pgmF.Close()
	return d.WritePGM(pgmF, comp)
}
